"""F5 — The branch-divergence workload subspace.

Paper claim (abstract): "Similarity Score, Scan of Large Arrays, MUMmerGPU,
Hybrid Sort, and Nearest Neighbor workloads exhibit relatively large
variation in branch divergence characteristics compared to others."

The bench reports three operationalizations of "variation" (all defined in
the library):

* **variation** — distance from the population centroid in the standardized
  divergence subspace (outlierness, includes the uniform extreme);
* **stress** — signed intensity score (how hard the workload exercises the
  divergence hardware);
* **heterogeneity** — spread of the workload's own kernels in the subspace.

The claim's shape is validated against the stress ranking, which is the
reading that matches the named set best (see EXPERIMENTS.md).
"""

import numpy as np

from repro.core import metrics
from repro.core.analysis.subspace import kernel_heterogeneity
from repro.core.evaluation import stress_ranking
from repro.report import ascii_table, text_scatter

PAPER_NAMED = {"SS", "SLA", "MUM", "HYS", "NN"}


def _build(analysis):
    sub = analysis.subspaces["branch divergence"]
    stress = stress_ranking(analysis.feature_matrix, "branch divergence unit", top=len(analysis.workloads))
    het = kernel_heterogeneity(analysis.profiles, list(metrics.DIVERGENCE_SUBSPACE))
    return sub, stress, het


def test_f5_divergence_subspace(benchmark, analysis, save_artifact):
    sub, stress, het = benchmark(_build, analysis)
    het_order = np.argsort(-het)
    rows = []
    var_rank = {w: i + 1 for i, (w, _) in enumerate(sub.ranking())}
    stress_rank = {w: i + 1 for i, (w, _) in enumerate(stress)}
    het_rank = {analysis.workloads[j]: i + 1 for i, j in enumerate(het_order)}
    for w in analysis.workloads:
        rows.append([w, var_rank[w], stress_rank[w], het_rank[w], w in PAPER_NAMED])
    rows.sort(key=lambda r: r[2])
    text = ascii_table(
        ["workload", "variation rank", "stress rank", "heterogeneity rank", "paper-named"],
        rows,
        title="F5: branch-divergence subspace diversity (three readings)",
    )
    if sub.pca.n_components >= 2:
        text += "\n" + text_scatter(
            sub.pca.scores[:, 0],
            sub.pca.scores[:, 1],
            sub.workloads,
            xlabel="div-PC1",
            ylabel="div-PC2",
        )
    save_artifact("f5_divergence_subspace.txt", text)

    # Claim shape: >=3 of the paper's 5 named workloads in the stress top-8,
    # and NN near the top of at least one reading.
    stress_top8 = {w for w, _ in stress[:8]}
    assert len(PAPER_NAMED & stress_top8) >= 3, stress_top8
    assert var_rank["NN"] <= 5 or het_rank["NN"] <= 3
