"""Shared fixtures.

``suite_profiles`` characterizes all 29 workloads once per machine (results
are cached on disk by the pipeline), so analysis-level tests can run against
real data without re-simulating per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CharacterizationConfig, characterize
from repro.simt import Device, Executor, KernelBuilder
from repro.trace import KernelTraceCollector


@pytest.fixture(scope="session")
def suite_profiles():
    return characterize(CharacterizationConfig()).profiles


@pytest.fixture()
def device():
    return Device()


def run_kernel(kernel, grid, block, args, device=None, **executor_kwargs):
    """Execute a kernel under a fresh collector; returns (device, profile)."""
    device = device or Device()
    collector = KernelTraceCollector()
    executor = Executor(device, sinks=[collector], **executor_kwargs)
    executor.launch(kernel, grid, block, args)
    return device, collector.profiles[0]


def build_copy_kernel():
    """Guarded element-wise copy used by several tests."""
    b = KernelBuilder("copy")
    src = b.param_buf("src")
    dst = b.param_buf("dst")
    n = b.param_i32("n")
    i = b.global_thread_id()
    with b.if_(b.ilt(i, n)):
        b.st(dst, i, b.ld(src, i))
    return b.finalize()
