"""Telemetry: spans, metrics, worker merge, exporters and the CLI surface."""

import json

import pytest

from repro.telemetry import (
    TRACE_FORMAT,
    Telemetry,
    format_summary,
    get_telemetry,
    load_trace,
    write_chrome_trace,
    write_spans_jsonl,
    write_trace,
)


@pytest.fixture()
def tele():
    """A private, enabled registry (never the process-global one)."""
    t = Telemetry()
    t.enable()
    return t


@pytest.fixture()
def global_tele():
    """The process-global registry, restored to disabled+empty afterwards."""
    t = get_telemetry()
    t.enable(reset=True)
    yield t
    t.disable()
    t.reset()


# ----------------------------------------------------------------------
# Core span/metric semantics
# ----------------------------------------------------------------------


def test_disabled_is_noop():
    t = Telemetry()
    with t.span("a", k=1):
        t.count("c")
        t.gauge("g", 2.0)
        t.observe("h", 3.0)
    assert t.start_span("b") is None
    assert t.open_span("d") is None
    t.finish_span(None)
    assert t.spans == [] and t.counters == {} and t.gauges == {} and t.histograms == {}


def test_disabled_span_is_shared_singleton():
    t = Telemetry()
    assert t.span("a") is t.span("b")  # no allocation on the disabled path


def test_span_nesting_and_attrs(tele):
    with tele.span("outer", kind="suite") as outer:
        with tele.span("inner") as inner:
            inner.set(blocks=4)
    spans = {sp.name: sp for sp in tele.spans}
    assert spans["inner"].parent_id == spans["outer"].span_id
    assert spans["outer"].parent_id is None
    assert spans["outer"].attrs == {"kind": "suite"}
    assert spans["inner"].attrs == {"blocks": 4}
    assert spans["inner"].duration <= spans["outer"].duration
    assert outer.span.t1 is not None


def test_span_records_exception(tele):
    with pytest.raises(RuntimeError):
        with tele.span("boom"):
            raise RuntimeError("x")
    (sp,) = tele.spans
    assert sp.attrs["error"] == "RuntimeError"
    assert sp.t1 is not None  # still closed


def test_open_spans_do_not_nest_under_each_other(tele):
    with tele.span("suite"):
        root = tele.current_span_id()
        a = tele.open_span("attempt", parent_id=root, workload="VA")
        b = tele.open_span("attempt", parent_id=root, workload="BS")
        # Detached spans never join the open-span stack...
        assert tele.current_span_id() == root
        # ...so both parent to the suite, not to each other.
        tele.finish_span(b)
        tele.finish_span(a)
    assert all(sp.parent_id == root for sp in tele.spans_by_name("attempt"))


def test_counters_gauges_histograms(tele):
    tele.count("hits")
    tele.count("hits", 2)
    tele.gauge("depth", 3.0)
    tele.gauge("depth", 5.0)
    for v in (1, 3, 3, 7):
        tele.observe("batch", v)
    assert tele.counters["hits"] == 3
    assert tele.gauges["depth"] == 5.0
    h = tele.histograms["batch"]
    assert (h.count, h.total, h.min, h.max) == (4, 14, 1, 7)
    assert h.mean == 3.5
    assert h.buckets == {1: 1, 3: 2, 7: 1}


def test_snapshot_merge_reparents_and_rebases(tele):
    worker = Telemetry()
    worker.enable()
    worker.epoch_anchor = tele.epoch_anchor + 100.0  # clocks differ by 100s
    with worker.span("workload:VA"):
        with worker.span("launch"):
            worker.count("engine.launches")
            worker.observe("batch", 2)
    snap = worker.snapshot()

    with tele.span("suite"):
        attempt = tele.open_span("attempt", parent_id=tele.current_span_id())
        tele.finish_span(attempt)
        tele.merge_snapshot(snap, parent_id=attempt.span_id)
    by_name = {sp.name: sp for sp in tele.spans}
    # Worker root re-parented under the dispatching attempt span.
    assert by_name["workload:VA"].parent_id == attempt.span_id
    # Non-root worker spans keep their in-worker parents.
    assert by_name["launch"].parent_id == by_name["workload:VA"].span_id
    # Timestamps rebased onto the parent's clock (the 100s skew applied).
    assert by_name["workload:VA"].t0 > attempt.t0 + 99.0
    assert tele.counters["engine.launches"] == 1
    assert tele.histograms["batch"].count == 1


def test_merged_ids_do_not_collide(tele):
    worker = Telemetry()
    worker.enable()
    worker._pid = tele._pid + 1  # what begin_worker()'s re-arm guarantees
    with worker.span("w"):
        pass
    with tele.span("w"):
        pass
    tele.merge_snapshot(worker.snapshot())
    ids = [sp.span_id for sp in tele.spans]
    assert len(ids) == len(set(ids))


# ----------------------------------------------------------------------
# Pipeline integration: serial and parallel characterization
# ----------------------------------------------------------------------


def _characterize(jobs, abbrevs):
    from repro.api import CharacterizationConfig, characterize

    return characterize(
        CharacterizationConfig(
            abbrevs=abbrevs, sample_blocks=8, use_cache=False, jobs=jobs
        )
    )


def test_serial_run_produces_span_tree_and_pass_costs(global_tele):
    _characterize(jobs=1, abbrevs=["VA"])
    t = global_tele
    (suite,) = t.spans_by_name("suite")
    (workload,) = t.spans_by_name("workload:VA")
    (attempt,) = t.spans_by_name("attempt")
    assert workload.parent_id == suite.span_id
    assert attempt.parent_id == workload.span_id
    assert suite.attrs["completed"] == 1 and suite.attrs["failed"] == 0
    launches = t.spans_by_name("launch")
    assert launches and all(sp.duration > 0 for sp in launches)
    assert t.counters["engine.launches"] == len(launches)
    assert t.counters["cache.misses"] == 1
    # Every enabled pass accrues nonzero measured time, even event-less ones.
    from repro.trace.profile import PASS_NAMES

    for name in PASS_NAMES:
        assert t.counters[f"pass.{name}.seconds"] > 0
        assert f"pass.{name}.events" in t.counters
    # The compiled engine recorded its batch-occupancy distribution.
    assert t.histograms["engine.compiled.batch_blocks"].count > 0


def test_parallel_run_merges_worker_spans_with_correct_parents(global_tele):
    _characterize(jobs=2, abbrevs=["VA", "BS"])
    t = global_tele
    (suite,) = t.spans_by_name("suite")
    attempts = t.spans_by_name("attempt")
    assert len(attempts) == 2
    assert all(sp.parent_id == suite.span_id for sp in attempts)
    attempt_of = {sp.attrs["workload"]: sp for sp in attempts}
    for abbrev in ("VA", "BS"):
        (workload,) = t.spans_by_name(f"workload:{abbrev}")
        assert workload.parent_id == attempt_of[abbrev].span_id
        # Worker spans keep their recording PID, distinct from the parent's.
        assert workload.pid != t._pid
    assert t.counters["engine.launches"] >= 2
    assert t.counters["cache.misses"] == 2


def test_disabled_run_records_nothing(global_tele):
    global_tele.disable()
    global_tele.reset()
    _characterize(jobs=1, abbrevs=["VA"])
    assert global_tele.spans == [] and global_tele.counters == {}


# ----------------------------------------------------------------------
# Exporters, loader, summary
# ----------------------------------------------------------------------


def _small_trace(tele):
    with tele.span("suite", workloads=1):
        with tele.span("launch", kernel="k"):
            tele.count("engine.launches")
    tele.count("pass.mix.events", 10)
    tele.count("pass.mix.seconds", 0.25)
    tele.gauge("depth", 2.0)
    tele.observe("batch", 3)
    return tele


def test_chrome_trace_schema(tele, tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(_small_trace(tele), str(path))
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "reproTelemetry"}
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert [e["name"] for e in meta] == ["process_name"]
    assert {e["name"] for e in complete} == {"suite", "launch"}
    for e in complete:
        assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
        assert e["cat"] == "repro"
        assert e["ts"] >= 0 and e["dur"] >= 0  # microseconds from trace start
        assert "id" in e["args"] and "parent" in e["args"]
    launch = next(e for e in complete if e["name"] == "launch")
    suite = next(e for e in complete if e["name"] == "suite")
    assert launch["args"]["parent"] == suite["args"]["id"]
    assert launch["args"]["kernel"] == "k"
    extra = doc["reproTelemetry"]
    assert extra["format"] == TRACE_FORMAT
    assert extra["counters"]["engine.launches"] == 1
    assert extra["histograms"]["batch"]["count"] == 1


def test_jsonl_roundtrip_and_chrome_load_agree(tele, tmp_path):
    _small_trace(tele)
    jl, ch = tmp_path / "t.jsonl", tmp_path / "t.json"
    write_trace(tele, str(jl))  # extension dispatch
    write_trace(tele, str(ch))
    a, b = load_trace(str(jl)), load_trace(str(ch))
    assert a.meta["format"] == TRACE_FORMAT
    assert [sp["name"] for sp in a.spans] == [sp["name"] for sp in b.spans]
    assert a.counters == b.counters
    assert a.gauges == b.gauges
    for data in (a, b):
        (launch,) = [sp for sp in data.spans if sp["name"] == "launch"]
        (suite,) = [sp for sp in data.spans if sp["name"] == "suite"]
        assert launch["parent"] == suite["id"]
        assert launch["dur"] <= suite["dur"]


def test_load_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("this is not json\n")
    with pytest.raises(ValueError, match="bad.jsonl:1"):
        load_trace(str(path))


def test_format_summary_sections(tele, tmp_path):
    path = tmp_path / "t.jsonl"
    write_spans_jsonl(_small_trace(tele), str(path))
    text = format_summary(load_trace(str(path)))
    assert "2 spans over" in text
    assert "top spans by self-time" in text
    assert "analysis passes (measured)" in text
    assert "mix" in text and "0.2500" in text
    assert "engine.launches = 1" in text
    assert "depth = 2" in text
    assert "batch: n=1" in text


def test_format_summary_empty():
    from repro.telemetry import TraceData

    assert "no spans recorded" in format_summary(TraceData())


# ----------------------------------------------------------------------
# CLI: --trace-out, REPRO_TRACE and the telemetry subcommand
# ----------------------------------------------------------------------


def test_cli_trace_out_and_summary(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    trace = tmp_path / "run.json"
    assert main(["characterize", "VA", "--sample-blocks", "8",
                 "--trace-out", str(trace)]) == 0
    captured = capsys.readouterr()
    assert f"wrote telemetry trace to {trace}" in captured.err
    assert not get_telemetry().enabled  # disabled again after the run

    doc = json.loads(trace.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert {"suite", "workload:VA", "attempt", "launch"} <= names

    assert main(["telemetry", str(trace), "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "top spans by self-time" in out
    assert "analysis passes (measured)" in out
    assert "cache.misses = 1" in out


def test_cli_repro_trace_env(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    trace = tmp_path / "env.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(trace))
    assert main(["characterize", "VA", "--sample-blocks", "8"]) == 0
    capsys.readouterr()
    kinds = [json.loads(line)["kind"] for line in trace.read_text().splitlines()]
    assert kinds[0] == "meta" and "span" in kinds and "counter" in kinds


def test_cli_telemetry_chrome_conversion(capsys, tele, tmp_path):
    from repro.cli import main

    jl = tmp_path / "t.jsonl"
    write_spans_jsonl(_small_trace(tele), str(jl))
    out_path = tmp_path / "t.chrome.json"
    assert main(["telemetry", str(jl), "--chrome", str(out_path)]) == 0
    capsys.readouterr()
    doc = json.loads(out_path.read_text())
    assert {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"} == {
        "suite", "launch",
    }


def test_cli_telemetry_usage_errors(capsys, tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit) as exc:
        main(["telemetry", str(tmp_path / "missing.json")])
    assert exc.value.code == 2
    assert "no such trace file" in capsys.readouterr().err

    bad = tmp_path / "bad.jsonl"
    bad.write_text("nope\n")
    with pytest.raises(SystemExit) as exc:
        main(["telemetry", str(bad)])
    assert exc.value.code == 2
    assert "could not parse" in capsys.readouterr().err
