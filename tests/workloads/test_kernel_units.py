"""Unit tests of individual workload kernels at small scales.

The workload integration tests validate each benchmark end-to-end at its
default scale; these tests exercise the *kernel builders* directly with
tiny, hand-checkable inputs, so a regression in one kernel localises to one
test instead of a suite-wide failure.
"""

import numpy as np
import pytest

from repro.simt import Device, DType, Executor


def _run(kernel, grid, block, args, device):
    Executor(device).launch(kernel, grid, block, args)


# ----------------------------------------------------------------------
# SDK kernels
# ----------------------------------------------------------------------


@pytest.mark.parametrize("variant", [0, 1, 2, 3])
def test_reduce_variants_agree(variant):
    from repro.workloads.sdk import reduction as R

    build = [
        R.build_reduce0_kernel,
        R.build_reduce1_kernel,
        R.build_reduce2_kernel,
        R.build_reduce3_kernel,
    ][variant]
    dev = Device()
    h = np.random.default_rng(variant).standard_normal(256)
    src = dev.from_array("src", h, readonly=True)
    dst = dev.alloc("dst", 4)
    _run(build(64), 4, 64, {"src": src, "dst": dst, "n": 256}, dev)
    assert np.isclose(dev.download(dst).sum(), h.sum())


def test_scan_naive_kernel_small():
    from repro.workloads.sdk.scan import build_scan_naive_kernel

    dev = Device()
    h = np.arange(1, 33)
    src = dev.from_array("src", h, DType.I32, readonly=True)
    dst = dev.alloc("dst", 32, DType.I32)
    _run(build_scan_naive_kernel(32), 1, 32, {"src": src, "dst": dst}, dev)
    expected = np.concatenate([[0], np.cumsum(h)[:-1]])
    assert np.array_equal(dev.download(dst), expected)


def test_scan_block_kernel_exclusive():
    from repro.workloads.sdk.scan import build_scan_block_kernel

    dev = Device()
    h = np.arange(64) % 7
    src = dev.from_array("src", h, DType.I32, readonly=True)
    dst = dev.alloc("dst", 64, DType.I32)
    sums = dev.alloc("sums", 2, DType.I32)
    _run(build_scan_block_kernel(32), 2, 32, {"src": src, "dst": dst, "sums": sums, "n": 64}, dev)
    # Each block scans its own 32 elements exclusively.
    for blk in range(2):
        seg = h[blk * 32 : (blk + 1) * 32]
        expected = np.concatenate([[0], np.cumsum(seg)[:-1]])
        assert np.array_equal(dev.download(dst)[blk * 32 : (blk + 1) * 32], expected)
    assert np.array_equal(dev.download(sums), [h[:32].sum(), h[32:].sum()])


def test_bitonic_kernel_sorts_any_pow2():
    from repro.workloads.sdk.bitonic import build_bitonic_kernel

    dev = Device()
    rng = np.random.default_rng(9)
    h = rng.integers(0, 1000, 64)
    data = dev.from_array("data", h, DType.I32)
    _run(build_bitonic_kernel(64), 1, 64, {"data": data}, dev)
    assert np.array_equal(dev.download(data), np.sort(h))


def test_matrixmul_kernel_single_tile():
    from repro.workloads.sdk.matrixmul import TILE, build_matrixmul_kernel

    dev = Device()
    rng = np.random.default_rng(4)
    a = rng.standard_normal((TILE, TILE))
    bb = rng.standard_normal((TILE, TILE))
    da = dev.from_array("A", a, readonly=True)
    db = dev.from_array("B", bb, readonly=True)
    dc = dev.alloc("C", TILE * TILE)
    _run(build_matrixmul_kernel(TILE), (1, 1), (TILE, TILE), {"A": da, "B": db, "C": dc}, dev)
    assert np.allclose(dev.download(dc).reshape(TILE, TILE), a @ bb)


def test_blackscholes_cnd_symmetry():
    """CND(d) + CND(-d) == 1 by construction of the sign fix-up."""
    from repro.workloads.sdk.blackscholes import _cnd_ref

    d = np.linspace(-3, 3, 101)
    assert np.allclose(_cnd_ref(d) + _cnd_ref(-d), 1.0, atol=1e-12)


def test_similarity_kernel_perfect_match_scores_full():
    from repro.workloads.sdk.similarityscore import MATCH, build_similarity_kernel

    dev = Device()
    qlen = 8
    query = np.array([0, 1, 2, 3, 0, 1, 2, 3])
    seqs = np.tile(query, (32, 1))
    lens = np.full(32, qlen)
    args = {
        "seqs": dev.from_array("seqs", seqs, DType.I32, readonly=True),
        "lens": dev.from_array("lens", lens, DType.I32, readonly=True),
        "query": dev.from_array("query", query, DType.I32, readonly=True),
        "row": dev.alloc("row", 32 * qlen, DType.I32),
        "best": dev.alloc("best", 32, DType.I32),
        "nseq": 32,
        "maxlen": qlen,
    }
    _run(build_similarity_kernel(qlen), 1, 32, args, dev)
    assert np.all(dev.download(args["best"]) == MATCH * qlen)


# ----------------------------------------------------------------------
# Parboil kernels
# ----------------------------------------------------------------------


def test_spmv_kernel_identity_matrix():
    from repro.workloads.parboil.spmv import build_spmv_kernel

    dev = Device()
    n = 32
    rowptr = dev.from_array("rowptr", np.arange(n + 1), DType.I32, readonly=True)
    cols = dev.from_array("cols", np.arange(n), DType.I32, readonly=True)
    vals = dev.from_array("vals", np.ones(n), readonly=True)
    x = dev.from_array("x", np.arange(n, dtype=float), readonly=True)
    y = dev.alloc("y", n)
    _run(
        build_spmv_kernel(),
        1,
        32,
        {"rowptr": rowptr, "cols": cols, "vals": vals, "x": x, "y": y, "nrows": n},
        dev,
    )
    assert np.allclose(dev.download(y), np.arange(n))


def test_tpacf_bins_cover_all_pairs():
    from repro.workloads.parboil.tpacf import NBINS, build_tpacf_kernel, tpacf_ref

    dev = Device()
    rng = np.random.default_rng(3)
    n = 64
    vecs = rng.standard_normal((n, 3))
    pos = vecs / np.linalg.norm(vecs, axis=1, keepdims=True)
    edges = np.cos(np.linspace(0.0, np.pi, NBINS + 1))
    args = {
        "x": dev.from_array("x", pos[:, 0], readonly=True),
        "y": dev.from_array("y", pos[:, 1], readonly=True),
        "z": dev.from_array("z", pos[:, 2], readonly=True),
        "edges": dev.from_array("edges", edges, readonly=True),
        "bins": dev.alloc("bins", NBINS, DType.I32),
    }
    _run(build_tpacf_kernel(n), 2, 32, args, dev)
    bins = dev.download(args["bins"])
    assert bins.sum() == n * (n - 1) // 2
    assert np.array_equal(bins, tpacf_ref(pos, edges))


def test_sad_kernel_zero_for_identical_frames():
    from repro.workloads.parboil.sad import MB, SEARCH, build_sad_kernel

    dev = Device()
    frame = np.arange(16 * 24).reshape(16, 24) % 251
    ref = np.zeros((16 + SEARCH, 24 + SEARCH), dtype=np.int64)
    ref[:16, :24] = frame
    cur = dev.from_array("cur", frame, DType.I32, readonly=True)
    refb = dev.from_array("ref", ref, DType.I32, readonly=True)
    nmb = (24 // MB) * (16 // MB)
    sads = dev.alloc("sads", nmb * SEARCH * SEARCH, DType.I32)
    _run(
        build_sad_kernel(24, 24 + SEARCH, 24 // MB),
        nmb,
        (SEARCH, SEARCH),
        {"cur": cur, "ref": refb, "sads": sads},
        dev,
    )
    out = dev.download(sads).reshape(nmb, SEARCH, SEARCH)
    # Displacement (0,0) compares identical pixels: SAD exactly 0.
    assert np.all(out[:, 0, 0] == 0)
    assert np.all(out[:, 1:, :] >= 0)


# ----------------------------------------------------------------------
# Rodinia kernels
# ----------------------------------------------------------------------


def test_bfs_kernel_one_level():
    from repro.workloads.rodinia.bfs import build_bfs_kernel

    dev = Device()
    # Star graph: node 0 -> 1,2,3.
    rowptr = dev.from_array("rowptr", np.array([0, 3, 3, 3, 3]), DType.I32, readonly=True)
    adj = dev.from_array("adj", np.array([1, 2, 3]), DType.I32, readonly=True)
    frontier = dev.from_array("frontier", np.array([1, 0, 0, 0]), DType.I32)
    nxt = dev.alloc("next_frontier", 4, DType.I32)
    cost = dev.from_array("cost", np.array([0, -1, -1, -1]), DType.I32)
    changed = dev.alloc("changed", 1, DType.I32)
    _run(
        build_bfs_kernel(),
        1,
        32,
        {
            "rowptr": rowptr,
            "adj": adj,
            "frontier": frontier,
            "next_frontier": nxt,
            "cost": cost,
            "changed": changed,
            "n": 4,
            "level": 0,
        },
        dev,
    )
    assert np.array_equal(dev.download(cost), [0, 1, 1, 1])
    assert np.array_equal(dev.download(nxt), [0, 1, 1, 1])
    assert dev.download(changed)[0] == 1
    assert np.array_equal(dev.download(frontier), [0, 0, 0, 0])  # consumed


def test_mummer_kernel_exact_reference_match():
    from repro.workloads.rodinia.mummergpu import Trie, build_match_kernel

    trie = Trie()
    ref = np.array([0, 1, 2, 3, 0, 1])
    for start in range(len(ref)):
        trie.insert(ref[start : start + 4])
    dev = Device()
    queries = np.array([[0, 1, 2, 3], [3, 3, 3, 3]])
    args = {
        "trie": dev.from_array("trie", trie.flat(), DType.I32, readonly=True),
        "queries": dev.from_array("queries", queries, DType.I32, readonly=True),
        "out": dev.alloc("out", 2, DType.I32),
        "nq": 2,
    }
    _run(build_match_kernel(4), 1, 32, args, dev)
    out = dev.download(args["out"])
    assert out[0] == 4  # exact substring of the reference
    assert out[1] == 1  # only the single '3' matches


def test_pathfinder_kernel_single_row():
    from repro.workloads.rodinia.pathfinder import BLOCK, build_pathfinder_kernel

    dev = Device()
    cols = BLOCK - 2  # single block, one ghost cell each side
    wall = np.zeros((2, cols), dtype=np.int64)
    wall[1] = np.arange(cols)
    wall_b = dev.from_array("wall", wall, DType.I32, readonly=True)
    src = dev.from_array("src", np.zeros(cols, dtype=np.int64), DType.I32)
    dst = dev.alloc("dst", cols, DType.I32)
    _run(
        build_pathfinder_kernel(cols, 1),
        1,
        BLOCK,
        {"wall": wall_b, "src": src, "dst": dst, "row0": 1},
        dev,
    )
    # min of three zero neighbours + wall row 1 == wall row 1.
    assert np.array_equal(dev.download(dst), wall[1])


def test_gaussian_fan1_multipliers():
    from repro.workloads.rodinia.gaussian import build_fan1_kernel

    dev = Device()
    n = 4
    a = np.array([[2.0, 1, 1, 1], [4, 1, 0, 0], [6, 0, 1, 0], [8, 0, 0, 1]])
    ab = dev.from_array("a", a)
    m = dev.alloc("m", n)
    _run(build_fan1_kernel(n), 1, 32, {"a": ab, "m": m, "k": 0}, dev)
    assert np.allclose(dev.download(m)[1:], [2.0, 3.0, 4.0])


def test_streamcluster_pgain_never_positive():
    from repro.workloads.rodinia.streamcluster import build_pgain_kernel

    dev = Device()
    rng = np.random.default_rng(5)
    n, d = 64, 4
    coords = rng.standard_normal((n, d))
    cost = np.full(n, 0.5)
    args = {
        "coords": dev.from_array("coords", coords, readonly=True),
        "weights": dev.from_array("weights", np.ones(n), readonly=True),
        "cost": dev.from_array("cost", cost, readonly=True),
        "delta": dev.alloc("delta", n),
        "npoints": n,
        "candidate": 0,
    }
    _run(build_pgain_kernel(d), 2, 32, args, dev)
    delta = dev.download(args["delta"])
    assert np.all(delta <= 0)
    assert delta[0] == pytest.approx(-0.5)  # the candidate itself: d2=0


def test_nw_single_tile_matches_reference():
    from repro.workloads.rodinia.nw import TILE, build_nw_tile_kernel, nw_ref

    dev = Device()
    rng = np.random.default_rng(8)
    sub = rng.integers(-3, 4, (TILE, TILE))
    penalty = 5
    dim = TILE + 1
    init = np.zeros((dim, dim), dtype=np.int64)
    init[0, :] = -penalty * np.arange(dim)
    init[:, 0] = -penalty * np.arange(dim)
    score = dev.from_array("score", init, DType.I32)
    refb = dev.from_array("ref", sub, DType.I32, readonly=True)
    _run(
        build_nw_tile_kernel(dim, penalty),
        1,
        TILE,
        {"score": score, "ref": refb, "diag": 0, "lo": 0},
        dev,
    )
    expected = nw_ref(sub, penalty)
    assert np.array_equal(dev.download(score).reshape(dim, dim), expected)


# ----------------------------------------------------------------------
# Scale variants: every workload still verifies off its default size
# ----------------------------------------------------------------------

SCALE_VARIANTS = {
    "VA": {"n": 2048, "block": 128},
    "RD": {"n": 4096, "blocks": 8},
    "SLA": {"n": 2048, "block": 128},
    "MM": {"width": 32},
    "TR": {"width": 64, "height": 64},
    "HG": {"n": 4096, "blocks": 8},
    "BS": {"n": 2048},
    "CONV": {"width": 64, "height": 32},
    "MC": {"blocks": 4, "paths": 8},
    "NB": {"n": 256, "block": 64},
    "BIT": {"block": 128, "blocks": 4},
    "SS": {"nseq": 64, "qlen": 8, "maxlen": 48},
    "MRIQ": {"voxels": 512, "ksamples": 32},
    "SAD": {"width": 32, "height": 16},
    "CP": {"width": 32, "height": 32, "natoms": 64},
    "SPMV": {"nrows": 512, "ncols": 512},
    "STEN": {"nx": 16, "ny": 16, "nz": 8, "iters": 1},
    "TPACF": {"n": 128},
    "KM": {"npoints": 512, "nclusters": 3, "iters": 2},
    "NN": {"n": 4096},
    "HS": {"size": 32, "iters": 2},
    "BFS": {"n": 512},
    "SRAD": {"rows": 32, "cols": 32, "iters": 1},
    "BP": {"n_input": 256},
    "NW": {"n": 64},
    "MUM": {"nq": 64, "qlen": 16, "ref_len": 128},
    "HYS": {"n": 1024, "nbuckets": 8},
    "PF": {"rows": 9, "cols": 512},
    "LUD": {"n": 32},
    "GA": {"n": 16},
    "LMD": {"dim": 2, "per_box": 8},
    "SC": {"npoints": 512, "candidates": 2},
    "SP": {"pairs": 4, "length": 256},
    "LBM": {"width": 32, "height": 16, "steps": 1},
    "CUTCP": {"width": 16, "height": 16, "natoms": 48},
    "DWT": {"n": 1024},
    "DCT": {"width": 64, "height": 32},
}


@pytest.mark.parametrize("abbrev", sorted(SCALE_VARIANTS))
def test_scale_variant_verifies(abbrev):
    from repro.workloads import registry
    from repro.workloads.runner import run_workload

    cls = registry.get(abbrev)
    profile = run_workload(cls(**SCALE_VARIANTS[abbrev]), sample_blocks=16)
    assert profile.total_warp_instrs > 0
