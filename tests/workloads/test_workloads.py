"""Workload integration tests: every benchmark runs and verifies.

``run_workload(..., verify=True)`` executes the workload end-to-end on the
simulator and compares device results against the numpy reference, so each
case here validates both the kernel implementation and the simulator
semantics it exercises.
"""

import numpy as np
import pytest

from repro.core import metrics
from repro.workloads import registry
from repro.workloads.runner import run_workload

ALL = registry.abbrevs()


def test_registry_has_37_workloads():
    assert len(ALL) == 37


def test_registry_suites():
    assert len(registry.by_suite("CUDA SDK")) == 15
    assert len(registry.by_suite("Parboil")) == 8
    assert len(registry.by_suite("Rodinia")) == 14


def test_registry_unknown_raises():
    with pytest.raises(KeyError, match="unknown workload"):
        registry.get("NOPE")


def test_metadata_complete():
    for cls in registry.all_workloads():
        assert cls.abbrev and cls.name and cls.suite and cls.description
        assert cls.default_scale, cls.abbrev


def test_unknown_scale_parameter_rejected():
    cls = registry.get("VA")
    with pytest.raises(ValueError, match="unknown scale"):
        cls(bogus=1)


@pytest.mark.parametrize("abbrev", ALL)
def test_runs_and_verifies(abbrev, suite_profiles):
    """Every workload's device results match its host reference.

    The session fixture already ran each workload with verify=True (a failed
    check would have raised there); here we assert the profile is sane.
    """
    profile = next(p for p in suite_profiles if p.workload == abbrev)
    assert profile.launches >= 1
    assert profile.total_warp_instrs > 0
    assert profile.total_thread_instrs >= profile.total_warp_instrs
    for kernel in profile.kernels:
        assert 0.0 < kernel.simd_efficiency <= 1.0
        assert kernel.profiled_blocks >= 1
        if kernel.gmem.accesses:
            assert kernel.gmem.transactions_32b >= kernel.gmem.accesses
            assert kernel.gmem.trans_per_access_32b <= 32.0
        if kernel.shmem.accesses:
            assert kernel.shmem.conflict_degree >= 1.0


def test_scaled_down_run_still_verifies():
    cls = registry.get("VA")
    profile = run_workload(cls(n=512, block=64), sample_blocks=None)
    assert profile.kernels[0].threads_total == 512


def test_scaling_changes_footprint():
    cls = registry.get("MM")
    small = run_workload(cls(width=32), sample_blocks=None)
    large = run_workload(cls(width=64), sample_blocks=None)
    assert large.total_thread_instrs > small.total_thread_instrs


def test_multi_kernel_workloads_profile_each_launch(suite_profiles):
    by_name = {p.workload: p for p in suite_profiles}
    assert by_name["SLA"].launches == 4
    assert by_name["NW"].launches == 15
    assert by_name["RD"].launches == 5
    assert by_name["LUD"].launches == 10
    assert by_name["HYS"].launches == 3
    assert by_name["GA"].launches == 62


def test_deterministic_inputs_across_instances():
    a = run_workload("HG", sample_blocks=8)
    b = run_workload("HG", sample_blocks=8)
    assert metrics.extract_vector(a) == metrics.extract_vector(b)


class TestKnownCharacteristics:
    """Spot-checks that each workload lands in its expected behavioural region."""

    @pytest.fixture(autouse=True)
    def _profiles(self, suite_profiles):
        self.by_name = {p.workload: p for p in suite_profiles}

    def _vec(self, w):
        return metrics.extract_vector(self.by_name[w])

    def test_va_is_streaming(self):
        v = self._vec("VA")
        assert v["coal.coalesced_frac"] == 1.0
        assert v["div.rate"] == 0.0
        assert v["loc.cold_rate"] == 1.0  # no reuse at all

    def test_mm_is_compute_dense(self):
        v = self._vec("MM")
        assert v["div.simd_efficiency"] == 1.0
        assert v["mix.shared"] > 0.1
        assert v["par.barrier_intensity"] > 0

    def test_sla_diverges_in_tree_phases(self):
        v = self._vec("SLA")
        assert v["div.rate"] > 0.2
        assert v["div.simd_efficiency"] < 0.8

    def test_ss_uncoalesced_and_divergent(self):
        v = self._vec("SS")
        assert v["coal.t32_per_access"] > 8
        assert v["div.simd_efficiency"] < 0.75

    def test_mum_texture_walks(self):
        v = self._vec("MUM")
        assert v["mix.texture"] > 0.05  # trie + queries fetched via texture
        assert v["div.rate"] > 0.3

    def test_km_point_major_layout_uncoalesced(self):
        assert self._vec("KM")["coal.t32_per_access"] > 8

    def test_bs_and_mriq_use_sfu(self):
        assert self._vec("BS")["mix.sfu"] > 0.03
        assert self._vec("MRIQ")["mix.sfu"] > 0.05

    def test_hg_and_tpacf_use_atomics(self):
        assert self._vec("HG")["mix.atomic"] > 0
        assert self._vec("TPACF")["mix.atomic"] > 0

    def test_bfs_low_simd_efficiency(self):
        assert self._vec("BFS")["div.simd_efficiency"] < 0.4

    def test_spmv_imbalanced(self):
        assert self._vec("SPMV")["par.warp_imbalance"] > 0.1

    def test_conv_uses_const_memory(self):
        assert self._vec("CONV")["mix.const"] > 0.02

    def test_nw_barrier_dense(self):
        v = self._vec("NW")
        assert v["par.barrier_intensity"] > self._vec("VA")["par.barrier_intensity"]
        assert v["div.simd_efficiency"] < 0.6

    def test_nb_high_fp_and_reuse(self):
        v = self._vec("NB")
        assert v["mix.fp"] > 0.3
        assert v["loc.rd256"] > 0.5  # tiles re-walk the same body arrays

    def test_bitonic_alternating_divergence(self):
        v = self._vec("BIT")
        assert 0.2 < v["div.rate"] < 0.9
        assert v["mix.shared"] > 0.05

    def test_transpose_no_bank_conflicts(self):
        assert self._vec("TR")["shm.conflict_degree"] == pytest.approx(1.0)

    def test_lud_kernels_heterogeneous(self, suite_profiles):
        from repro.core.analysis.subspace import kernel_heterogeneity

        het = kernel_heterogeneity(suite_profiles, ["div.simd_efficiency", "mix.shared"])
        by = dict(zip([p.workload for p in suite_profiles], het))
        assert by["LUD"] > 0.1
