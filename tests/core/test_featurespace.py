"""Feature matrix, standardization and correlation analysis."""

import numpy as np
import pytest

from repro.core.featurespace import (
    FeatureMatrix,
    correlated_pairs,
    correlation_matrix,
    standardize,
)


def _fm(values):
    values = np.asarray(values, dtype=float)
    n, d = values.shape
    return FeatureMatrix(
        workloads=[f"w{i}" for i in range(n)],
        suites=["A" if i % 2 else "B" for i in range(n)],
        metric_names=[f"m{j}" for j in range(d)],
        values=values,
    )


def test_shape_validation():
    with pytest.raises(ValueError, match="shape"):
        FeatureMatrix(["a"], ["s"], ["m0", "m1"], np.zeros((1, 3)))


def test_row_and_column_access():
    fm = _fm([[1, 2], [3, 4]])
    assert fm.row("w1") == {"m0": 3.0, "m1": 4.0}
    assert np.array_equal(fm.column("m1"), [2.0, 4.0])


def test_subset_preserves_order_and_values():
    fm = _fm([[1, 2, 3], [4, 5, 6]])
    sub = fm.subset(["m2", "m0"])
    assert sub.metric_names == ["m2", "m0"]
    assert np.array_equal(sub.values, [[3, 1], [6, 4]])


def test_subset_is_a_copy():
    fm = _fm([[1, 2], [3, 4]])
    sub = fm.subset(["m0"])
    sub.values[0, 0] = 99
    assert fm.values[0, 0] == 1


def test_standardize_zero_mean_unit_std():
    rng = np.random.default_rng(0)
    fm = _fm(rng.standard_normal((12, 4)) * 5 + 3)
    sm = standardize(fm)
    assert np.allclose(sm.z.mean(axis=0), 0, atol=1e-12)
    assert np.allclose(sm.z.std(axis=0), 1, atol=1e-12)


def test_standardize_drops_constant_columns():
    fm = _fm([[1, 5, 2], [2, 5, 3], [3, 5, 4]])
    sm = standardize(fm)
    assert sm.dropped == ["m1"]
    assert sm.metric_names == ["m0", "m2"]
    assert sm.z.shape == (3, 2)


def test_correlation_matrix_diagonal_ones():
    rng = np.random.default_rng(1)
    fm = _fm(rng.standard_normal((15, 5)))
    corr, names = correlation_matrix(fm)
    assert np.allclose(np.diag(corr), 1.0)
    assert len(names) == 5
    assert np.allclose(corr, corr.T)


def test_correlated_pairs_found_and_sorted():
    rng = np.random.default_rng(2)
    base = rng.standard_normal(20)
    values = np.column_stack(
        [base, base * 2 + 0.01 * rng.standard_normal(20), -base, rng.standard_normal(20)]
    )
    pairs = correlated_pairs(_fm(values), threshold=0.9)
    found = {(a, b) for a, b, _ in pairs}
    assert ("m0", "m1") in found
    assert ("m0", "m2") in found
    mags = [abs(r) for _, _, r in pairs]
    assert mags == sorted(mags, reverse=True)
    # Anti-correlation is reported with its sign.
    r02 = next(r for a, b, r in pairs if (a, b) == ("m0", "m2"))
    assert r02 < 0


def test_correlated_pairs_empty_for_independent_columns():
    rng = np.random.default_rng(3)
    pairs = correlated_pairs(_fm(rng.standard_normal((200, 4))), threshold=0.9)
    assert pairs == []


def test_from_profiles_uses_registry(suite_profiles):
    fm = FeatureMatrix.from_profiles(suite_profiles)
    from repro.core import metrics

    assert fm.metric_names == metrics.metric_names()
    assert fm.n_workloads == len(suite_profiles)
    assert np.isfinite(fm.values).all()
