"""Design-space evaluation metrics: geomean, Kendall tau, subset accuracy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import kendalltau as scipy_kendalltau

from repro.core.evaluation import (
    STRESS_PROFILES,
    all_stress_rankings,
    evaluate_subset,
    geomean,
    kendall_tau,
    random_subset_errors,
    stress_ranking,
)
from repro.core.featurespace import FeatureMatrix


def test_geomean_basic():
    assert geomean(np.array([1.0, 4.0])) == pytest.approx(2.0)


def test_geomean_weighted():
    v = np.array([2.0, 8.0])
    w = np.array([3.0, 1.0])
    assert geomean(v, w) == pytest.approx(np.exp((3 * np.log(2) + np.log(8)) / 4))


def test_geomean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geomean(np.array([1.0, 0.0]))


def test_kendall_tau_extremes():
    assert kendall_tau([1, 2, 3, 4], [2, 3, 4, 5]) == 1.0
    assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == -1.0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=15, unique=True),
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=15, unique=True),
)
def test_kendall_tau_matches_scipy(a, b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    ours = kendall_tau(a, b)
    theirs = scipy_kendalltau(a, b).statistic
    assert ours == pytest.approx(theirs, abs=1e-9)


def test_evaluate_subset_perfect_when_subset_is_everything():
    rng = np.random.default_rng(0)
    perf = rng.uniform(0.5, 3.0, (10, 6))
    ev = evaluate_subset(perf, list(range(10)), [0.1] * 10, [f"d{j}" for j in range(6)])
    assert ev.mean_error == pytest.approx(0.0, abs=1e-12)
    assert ev.kendall_tau == 1.0
    assert ev.same_winner


def test_evaluate_subset_weighting_matters():
    # Two homogeneous groups; a weighted single-per-group subset is exact.
    perf = np.vstack([np.tile([2.0, 1.0], (6, 1)), np.tile([1.0, 2.0], (2, 1))])
    ev = evaluate_subset(perf, [0, 6], [6 / 8, 2 / 8], ["d0", "d1"])
    assert ev.mean_error == pytest.approx(0.0, abs=1e-12)


def test_evaluate_subset_alignment_checked():
    perf = np.ones((4, 2))
    with pytest.raises(ValueError):
        evaluate_subset(perf, [0, 1], [1.0], ["d0", "d1"])


def test_random_subset_errors_distribution():
    rng = np.random.default_rng(1)
    perf = rng.uniform(0.5, 2.0, (12, 5))
    errors = random_subset_errors(perf, subset_size=3, trials=50, rng=rng)
    assert errors.shape == (50,)
    assert np.all(errors >= 0)


def _fm_for_stress():
    from repro.core import metrics

    names = metrics.metric_names()
    rng = np.random.default_rng(5)
    values = rng.uniform(0, 1, (6, len(names)))
    # Make w0 the clear divergence stressor.
    fm = FeatureMatrix([f"w{i}" for i in range(6)], ["s"] * 6, names, values)
    di = names.index("div.rate")
    si = names.index("div.simd_efficiency")
    fm.values[0, di] = 5.0
    fm.values[0, si] = 0.0
    return fm


def test_stress_ranking_picks_extreme_workload():
    fm = _fm_for_stress()
    ranking = stress_ranking(fm, "branch divergence unit", top=3)
    assert ranking[0][0] == "w0"
    scores = [s for _, s in ranking]
    assert scores == sorted(scores, reverse=True)


def test_all_stress_rankings_cover_blocks():
    fm = _fm_for_stress()
    rankings = all_stress_rankings(fm, top=2)
    assert set(rankings) == set(STRESS_PROFILES)
    assert all(len(v) == 2 for v in rankings.values())


def test_stress_rankings_on_real_suite(suite_profiles):
    fm = FeatureMatrix.from_profiles(suite_profiles)
    div = [w for w, _ in stress_ranking(fm, "branch divergence unit", top=8)]
    # The known heavy-divergence workloads must dominate this ranking.
    assert len({"BFS", "SLA", "MUM", "SS", "BIT", "NW"} & set(div)) >= 4
    sfu = [w for w, _ in stress_ranking(fm, "SFU pipeline", top=4)]
    assert "MRIQ" in sfu or "BS" in sfu
