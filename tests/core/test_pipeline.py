"""Pipeline orchestration: caching, analysis integration, determinism."""

import numpy as np
import pytest

from repro.api import characterize
from repro.core.pipeline import AnalysisResult, analyze
from repro.core.runtime import CharacterizationConfig


def _profiles(config):
    return characterize(config).profiles


def test_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    first = _profiles(CharacterizationConfig(abbrevs=["VA"], sample_blocks=8))
    files = list(tmp_path.glob("*.profile.json"))
    assert len(files) == 1
    second = _profiles(CharacterizationConfig(abbrevs=["VA"], sample_blocks=8))
    assert second[0].workload == "VA"
    assert second[0].total_warp_instrs == first[0].total_warp_instrs


def test_cache_shards_are_per_workload_and_config(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    _profiles(CharacterizationConfig(abbrevs=["VA"], sample_blocks=8))
    _profiles(CharacterizationConfig(abbrevs=["VA"], sample_blocks=4))
    _profiles(CharacterizationConfig(abbrevs=["HG"], sample_blocks=8))
    # One shard per (workload, sample_blocks): VA@8, VA@4, HG@8.
    assert len(list(tmp_path.glob("*.profile.json"))) == 3
    # A multi-workload run reuses the single-workload shards: no new files.
    _profiles(CharacterizationConfig(abbrevs=["VA", "HG"], sample_blocks=8))
    assert len(list(tmp_path.glob("*.profile.json"))) == 3


def test_cache_can_be_disabled(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    _profiles(CharacterizationConfig(abbrevs=["VA"], sample_blocks=8, use_cache=False))
    assert list(tmp_path.glob("*")) == []


def test_legacy_pipeline_entrypoints_are_gone():
    import repro.core.pipeline as pipeline

    assert not hasattr(pipeline, "characterize_suites")
    assert not hasattr(pipeline, "characterize_and_analyze")
    with pytest.raises(TypeError):
        characterize(["VA"])  # old positional abbrev-list convention


def test_analyze_produces_complete_result(suite_profiles):
    result = analyze(suite_profiles)
    assert isinstance(result, AnalysisResult)
    n = len(suite_profiles)
    assert len(result.workloads) == n
    assert result.pca.scores.shape[0] == n
    assert result.pca.retained >= 0.9
    assert len(result.dendrogram.merges) == n - 1
    assert result.kmeans_best_k == max(result.kmeans_bics, key=result.kmeans_bics.get)
    assert sum(r.cluster_size for r in result.representatives) == n
    assert set(result.subspaces) == {"branch divergence", "memory coalescing"}


def test_analyze_deterministic(suite_profiles):
    a = analyze(suite_profiles, seed=7)
    b = analyze(suite_profiles, seed=7)
    assert np.array_equal(a.kmeans.labels, b.kmeans.labels)
    assert [r.workload for r in a.representatives] == [r.workload for r in b.representatives]
    assert np.array_equal(a.pca.scores, b.pca.scores)


def test_analyze_variance_target_changes_dimensionality(suite_profiles):
    lo = analyze(suite_profiles, variance_target=0.7)
    hi = analyze(suite_profiles, variance_target=0.95)
    assert lo.pca.n_components < hi.pca.n_components


def test_analyze_custom_subspaces(suite_profiles):
    result = analyze(suite_profiles, subspaces={"sfu": ["mix.sfu", "mix.fp"]})
    assert list(result.subspaces) == ["sfu"]


def test_profiles_are_deterministic_across_runs():
    config = CharacterizationConfig(abbrevs=["SLA"], sample_blocks=16, use_cache=False)
    a = _profiles(config)
    b = _profiles(config)
    pa, pb = a[0], b[0]
    assert pa.total_thread_instrs == pb.total_thread_instrs
    from repro.core import metrics

    va = metrics.extract_vector(pa)
    vb = metrics.extract_vector(pb)
    assert va == vb
