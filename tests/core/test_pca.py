"""PCA: algebraic properties, scipy cross-check, and behaviour on edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.analysis.pca import fit_pca, full_spectrum
from repro.core.featurespace import FeatureMatrix, standardize


def _fm(values, prefix="m"):
    values = np.asarray(values, dtype=float)
    n, d = values.shape
    return FeatureMatrix(
        workloads=[f"w{i}" for i in range(n)],
        suites=["s"] * n,
        metric_names=[f"{prefix}{j}" for j in range(d)],
        values=values,
    )


@pytest.fixture()
def random_matrix():
    rng = np.random.default_rng(3)
    base = rng.standard_normal((20, 6))
    # Add correlated columns to exercise the "correlated reduction" path.
    extra = base[:, :2] @ rng.standard_normal((2, 4)) + 0.01 * rng.standard_normal((20, 4))
    return _fm(np.hstack([base, extra]))


def test_components_orthonormal(random_matrix):
    pca = fit_pca(standardize(random_matrix), n_components=5)
    gram = pca.components.T @ pca.components
    assert np.allclose(gram, np.eye(5), atol=1e-10)


def test_explained_variance_descending(random_matrix):
    pca = fit_pca(standardize(random_matrix), variance_target=None)
    assert np.all(np.diff(pca.explained_variance) <= 1e-12)


def test_variance_target_respected(random_matrix):
    pca = fit_pca(standardize(random_matrix), variance_target=0.9)
    assert pca.retained >= 0.9
    smaller = fit_pca(standardize(random_matrix), n_components=pca.n_components - 1)
    assert smaller.retained < 0.9


def test_scores_reproduce_projection(random_matrix):
    sm = standardize(random_matrix)
    pca = fit_pca(sm, n_components=3)
    assert np.allclose(pca.scores, sm.z @ pca.components)


def test_score_variance_equals_eigenvalues(random_matrix):
    sm = standardize(random_matrix)
    pca = fit_pca(sm, variance_target=None)
    var = pca.scores.var(axis=0, ddof=1)
    assert np.allclose(var, pca.explained_variance, atol=1e-10)


def test_matches_scipy_svd(random_matrix):
    sm = standardize(random_matrix)
    pca = fit_pca(sm, n_components=4)
    _u, s, vt = np.linalg.svd(sm.z, full_matrices=False)
    ratio = (s**2) / (s**2).sum()
    assert np.allclose(pca.explained_ratio, ratio[:4], atol=1e-10)
    for j in range(4):
        # Components match up to sign.
        dot = abs(float(vt[j] @ pca.components[:, j]))
        assert dot == pytest.approx(1.0, abs=1e-8)


def test_full_spectrum_sums_to_one(random_matrix):
    spectrum = full_spectrum(standardize(random_matrix))
    assert spectrum.sum() == pytest.approx(1.0)


def test_deterministic_sign_convention(random_matrix):
    sm = standardize(random_matrix)
    a = fit_pca(sm, n_components=3)
    b = fit_pca(sm, n_components=3)
    assert np.array_equal(a.components, b.components)
    for j in range(3):
        pivot = np.argmax(np.abs(a.components[:, j]))
        assert a.components[pivot, j] > 0


def test_top_loadings_sorted(random_matrix):
    pca = fit_pca(standardize(random_matrix), n_components=2)
    loadings = pca.top_loadings(0, n=4)
    mags = [abs(v) for _, v in loadings]
    assert mags == sorted(mags, reverse=True)


def test_single_workload_rejected():
    fm = _fm(np.ones((1, 3)))
    with pytest.raises(ValueError):
        fit_pca(standardize(fm))


def test_constant_columns_dropped_before_pca():
    rng = np.random.default_rng(0)
    values = rng.standard_normal((10, 3))
    values[:, 1] = 7.0
    sm = standardize(_fm(values))
    assert sm.dropped == ["m1"]
    pca = fit_pca(sm, variance_target=None)
    assert pca.components.shape[0] == 2


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        np.float64,
        (8, 5),
        elements=st.floats(-100, 100, allow_nan=False),
    )
)
def test_pca_never_loses_variance(values):
    values = values + np.arange(5) * 1e-3  # avoid fully degenerate input
    values[:, 0] += np.arange(8)  # ensure at least one varying column
    sm = standardize(_fm(values))
    pca = fit_pca(sm, variance_target=None)
    assert pca.retained == pytest.approx(1.0, abs=1e-9)
    assert 1 <= pca.n_components <= 5
