"""Hierarchical clustering: scipy cross-checks and structural properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy.cluster import hierarchy as sp_hier
from scipy.spatial.distance import pdist

from repro.core.analysis.hier import euclidean_distance_matrix, linkage


@pytest.fixture()
def points():
    rng = np.random.default_rng(11)
    return np.vstack(
        [rng.standard_normal((5, 3)) + c for c in ([0, 0, 0], [10, 0, 0], [0, 10, 0])]
    )


def _labels(n):
    return [f"w{i}" for i in range(n)]


def test_distance_matrix_matches_scipy(points):
    ours = euclidean_distance_matrix(points)
    theirs = sp_hier.distance.squareform(pdist(points))
    assert np.allclose(ours, theirs, atol=1e-10)


@pytest.mark.parametrize("method", ["single", "complete", "average", "ward"])
def test_merge_heights_match_scipy(points, method):
    dendro = linkage(points, _labels(len(points)), method=method)
    z = sp_hier.linkage(points, method=method)
    ours = sorted(m.height for m in dendro.merges)
    theirs = sorted(z[:, 2])
    assert np.allclose(ours, theirs, atol=1e-8)


@pytest.mark.parametrize("method", ["single", "complete", "average", "ward"])
def test_cut_recovers_planted_clusters(points, method):
    dendro = linkage(points, _labels(len(points)), method=method)
    labels = dendro.cut(3)
    truth = np.repeat([0, 1, 2], 5)
    mapping = {}
    for ours, true in zip(labels, truth):
        assert mapping.setdefault(ours, true) == true
    assert len(set(labels)) == 3


def test_cut_extremes(points):
    dendro = linkage(points, _labels(len(points)), method="average")
    assert len(set(dendro.cut(1))) == 1
    assert len(set(dendro.cut(len(points)))) == len(points)
    with pytest.raises(ValueError):
        dendro.cut(0)
    with pytest.raises(ValueError):
        dendro.cut(len(points) + 1)


def test_merge_sizes_telescoping(points):
    dendro = linkage(points, _labels(len(points)), method="average")
    assert dendro.merges[-1].size == len(points)


def test_merge_height_of_outlier_is_largest():
    rng = np.random.default_rng(2)
    pts = rng.standard_normal((8, 2))
    pts = np.vstack([pts, [50.0, 50.0]])
    labels = _labels(9)
    dendro = linkage(pts, labels, method="average")
    heights = {lab: dendro.merge_height_of(lab) for lab in labels}
    assert max(heights, key=heights.get) == "w8"


def test_cophenetic_matches_scipy(points):
    dendro = linkage(points, _labels(len(points)), method="average")
    z = sp_hier.linkage(points, method="average")
    ours = dendro.cophenetic_matrix()
    theirs = sp_hier.distance.squareform(sp_hier.cophenet(z))
    assert np.allclose(np.sort(ours.ravel()), np.sort(theirs.ravel()), atol=1e-8)


def test_unknown_method_rejected(points):
    with pytest.raises(ValueError, match="unknown linkage"):
        linkage(points, _labels(len(points)), method="median")


def test_label_mismatch_rejected(points):
    with pytest.raises(ValueError, match="mismatch"):
        linkage(points, _labels(3), method="average")


@settings(max_examples=25, deadline=None)
@given(
    arrays(np.float64, (7, 3), elements=st.floats(-50, 50, allow_nan=False)),
    st.sampled_from(["complete", "average", "ward"]),
)
def test_heights_monotonic_nondecreasing(values, method):
    """Complete/average/Ward linkage can never produce height inversions."""
    dendro = linkage(values, _labels(7), method=method)
    heights = [m.height for m in dendro.merges]
    assert all(b >= a - 1e-9 for a, b in zip(heights, heights[1:]))


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, (6, 2), elements=st.floats(-10, 10, allow_nan=False)))
def test_every_cut_is_a_partition(values):
    dendro = linkage(values, _labels(6), method="average")
    for k in range(1, 7):
        labels = dendro.cut(k)
        assert len(labels) == 6
        assert set(labels) == set(range(len(set(labels))))
        assert len(set(labels)) == k
