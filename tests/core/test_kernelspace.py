"""Kernel-level workload space."""

import numpy as np
import pytest

from repro.core.analysis.pca import fit_pca, varimax
from repro.core.featurespace import standardize
from repro.core.kernelspace import kernel_feature_matrix, workload_spread


def test_kernel_matrix_row_per_kernel_group(suite_profiles):
    fm, points = kernel_feature_matrix(suite_profiles)
    assert fm.n_workloads == len(points)
    # Each workload contributes at least one kernel group.
    assert {p.workload for p in points} == {p.workload for p in suite_profiles}
    # RD's kernel series shows up as distinct points.
    rd = [p for p in points if p.workload == "RD"]
    assert len(rd) == 4  # reduce0..3; the two reduce3 launches merge by name
    assert np.isfinite(fm.values).all()


def test_repeated_launches_merge(suite_profiles):
    fm, points = kernel_feature_matrix(suite_profiles)
    km = [p for p in points if p.workload == "KM"]
    assert len(km) == 1  # 3 launches of the same assign kernel merge
    assert km[0].launches == 3


def test_labels_unique(suite_profiles):
    fm, _points = kernel_feature_matrix(suite_profiles)
    assert len(set(fm.workloads)) == len(fm.workloads)


def test_workload_spread_zero_for_single_kernel(suite_profiles):
    fm, points = kernel_feature_matrix(suite_profiles)
    sm = standardize(fm)
    pca = fit_pca(sm, variance_target=0.9)
    spread = workload_spread(pca.scores, points)
    assert spread["MUM"] == 0.0  # single kernel
    assert spread["LUD"] > 0.5  # diagonal/perimeter/internal differ wildly
    assert spread["NN"] > 0.2  # distance vs argmin kernels differ


def test_kernel_space_larger_than_workload_space(suite_profiles):
    fm, points = kernel_feature_matrix(suite_profiles)
    assert fm.n_workloads > len(suite_profiles)


def test_varimax_preserves_span(suite_profiles):
    fm, _ = kernel_feature_matrix(suite_profiles)
    sm = standardize(fm)
    pca = fit_pca(sm, n_components=4)
    rotated = varimax(pca.components)
    assert rotated.shape == pca.components.shape
    assert np.allclose(rotated.T @ rotated, np.eye(4), atol=1e-8)
    # Projections onto the rotated basis preserve total variance.
    orig = sm.z @ pca.components
    rot = sm.z @ rotated
    assert np.allclose((orig**2).sum(), (rot**2).sum(), rtol=1e-9)


def test_varimax_single_component_noop():
    loading = np.array([[1.0], [0.0], [0.0]])
    assert np.array_equal(varimax(loading), loading)
