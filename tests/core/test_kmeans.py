"""K-means + BIC: recovery of planted clusters and model-selection behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis.kmeans import KMeansResult, bic_score, choose_k, kmeans


def _blobs(k, per, d=4, spread=8.0, seed=5):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((k, d)) * spread
    return np.vstack([c + rng.standard_normal((per, d)) for c in centers])


def test_recovers_planted_partition():
    pts = _blobs(3, 10)
    result = kmeans(pts, 3, np.random.default_rng(0))
    truth = np.repeat([0, 1, 2], 10)
    mapping = {}
    for ours, true in zip(result.labels, truth):
        assert mapping.setdefault(ours, true) == true


def test_bic_selects_planted_k():
    pts = _blobs(4, 8)
    best_k, _fits = choose_k(pts, range(1, 9), np.random.default_rng(1))
    assert best_k == 4


def test_inertia_decreases_with_k():
    pts = _blobs(3, 10)
    rng = np.random.default_rng(2)
    inertias = [kmeans(pts, k, rng).inertia for k in (1, 2, 4, 8)]
    assert all(b <= a + 1e-9 for a, b in zip(inertias, inertias[1:]))


def test_k_equals_n_gives_zero_inertia():
    pts = _blobs(2, 3)
    result = kmeans(pts, len(pts), np.random.default_rng(3))
    assert result.inertia == pytest.approx(0.0, abs=1e-18)


def test_invalid_k_rejected():
    pts = _blobs(2, 3)
    with pytest.raises(ValueError):
        kmeans(pts, 0)
    with pytest.raises(ValueError):
        kmeans(pts, len(pts) + 1)


def test_deterministic_given_seed():
    pts = _blobs(3, 10)
    a = kmeans(pts, 3, np.random.default_rng(42))
    b = kmeans(pts, 3, np.random.default_rng(42))
    assert np.array_equal(a.labels, b.labels)


def test_cluster_members_partition():
    pts = _blobs(3, 10)
    result = kmeans(pts, 3, np.random.default_rng(4))
    members = result.cluster_members()
    combined = sorted(int(i) for group in members for i in group)
    assert combined == list(range(len(pts)))


def test_centers_are_cluster_means():
    pts = _blobs(2, 12)
    result = kmeans(pts, 2, np.random.default_rng(6))
    for j in range(2):
        sel = result.labels == j
        assert np.allclose(result.centers[j], pts[sel].mean(axis=0), atol=1e-9)


def test_bic_penalises_overfitting_on_single_blob():
    rng = np.random.default_rng(7)
    pts = rng.standard_normal((24, 3))
    best_k, fits = choose_k(pts, range(1, 8), rng)
    assert best_k <= 2  # a single Gaussian should not fragment far


def test_bic_minus_inf_when_k_equals_n():
    pts = _blobs(2, 2)
    result = kmeans(pts, len(pts), np.random.default_rng(8))
    assert bic_score(pts, result) == -np.inf


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 5), st.integers(3, 8), st.integers(0, 1000))
def test_labels_within_range_and_assignment_optimal(k, per, seed):
    pts = _blobs(k, per, seed=seed)
    result = kmeans(pts, k, np.random.default_rng(seed))
    assert result.labels.min() >= 0 and result.labels.max() < k
    # Every point sits with its closest centre (Lloyd fixed point).
    d = ((pts[:, None, :] - result.centers[None, :, :]) ** 2).sum(axis=2)
    assert np.array_equal(result.labels, d.argmin(axis=1))


def test_rand_index_identical_partitions():
    from repro.core.analysis.kmeans import rand_index

    assert rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0  # label permutation
    assert rand_index([0, 1, 2], [0, 1, 2]) == 1.0


def test_rand_index_disagreement():
    from repro.core.analysis.kmeans import rand_index

    # One pair agreement differs: {0,1} together vs apart.
    assert 0.0 <= rand_index([0, 0, 1], [0, 1, 1]) < 1.0


def test_rand_index_shape_check():
    import pytest as _pytest

    from repro.core.analysis.kmeans import rand_index

    with _pytest.raises(ValueError):
        rand_index([0, 1], [0, 1, 2])


def test_rand_index_single_item():
    from repro.core.analysis.kmeans import rand_index

    assert rand_index([0], [5]) == 1.0
