"""Subspace analysis, diversity statistics and representative selection."""

import numpy as np
import pytest

from repro.core import metrics
from repro.core.analysis.diversity import (
    coverage_of_subset,
    nearest_neighbor_distances,
    outlier_ranking,
    representatives,
    suite_diversity,
)
from repro.core.analysis.kmeans import kmeans
from repro.core.analysis.subspace import (
    analyze_subspace,
    kernel_heterogeneity,
    variation_scores,
)
from repro.core.featurespace import FeatureMatrix, standardize


def _fm(values, suites=None):
    values = np.asarray(values, dtype=float)
    n, d = values.shape
    return FeatureMatrix(
        workloads=[f"w{i}" for i in range(n)],
        suites=suites or ["s"] * n,
        metric_names=[f"m{j}" for j in range(d)],
        values=values,
    )


def test_variation_scores_centroid_distance():
    fm = _fm([[0, 0], [0, 0], [10, 10], [0, 0]])
    sm = standardize(fm)
    scores = variation_scores(sm)
    assert scores.argmax() == 2
    assert scores[0] == pytest.approx(scores[1])


def test_variation_normalised_by_dimension():
    rng = np.random.default_rng(0)
    base = rng.standard_normal((10, 2))
    fm2 = _fm(base)
    fm4 = _fm(np.hstack([base, base]))
    v2 = variation_scores(standardize(fm2))
    v4 = variation_scores(standardize(fm4))
    assert np.allclose(v2, v4)


def test_analyze_subspace_pipeline():
    rng = np.random.default_rng(1)
    fm = _fm(rng.standard_normal((12, 6)))
    sub = analyze_subspace(fm, ["m0", "m1", "m2"], "test")
    assert sub.name == "test"
    assert sub.feature_matrix.metric_names == ["m0", "m1", "m2"]
    assert len(sub.variation) == 12
    ranking = sub.ranking()
    assert len(ranking) == 12
    scores = [s for _, s in ranking]
    assert scores == sorted(scores, reverse=True)
    assert sub.top(3) == [w for w, _ in ranking[:3]]


def test_analyze_subspace_rejects_constant_subspace():
    fm = _fm(np.ones((5, 3)))
    with pytest.raises(ValueError, match="no varying"):
        analyze_subspace(fm, ["m0"], "dead")


def test_outlier_ranking_orders_by_centroid_distance():
    fm_values = np.zeros((5, 2))
    fm_values[3] = [9, 9]
    ranking = outlier_ranking(fm_values, [f"w{i}" for i in range(5)])
    assert ranking[0][0] == "w3"


def test_nearest_neighbor_distances():
    pts = np.array([[0.0, 0], [1, 0], [10, 0]])
    d = nearest_neighbor_distances(pts)
    assert d[0] == pytest.approx(1.0)
    assert d[2] == pytest.approx(9.0)


def test_coverage_of_subset_zero_when_complete():
    pts = np.random.default_rng(2).standard_normal((6, 3))
    assert coverage_of_subset(pts, range(6)) == pytest.approx(0.0)
    assert coverage_of_subset(pts, [0]) > 0


def test_representatives_nearest_to_centroid():
    rng = np.random.default_rng(3)
    pts = np.vstack([rng.standard_normal((6, 2)), rng.standard_normal((6, 2)) + 20])
    km = kmeans(pts, 2, rng)
    reps = representatives(km, pts, [f"w{i}" for i in range(12)])
    assert len(reps) == 2
    assert sum(r.cluster_size for r in reps) == 12
    assert sum(r.weight for r in reps) == pytest.approx(1.0)
    for rep in reps:
        # Exemplar really is the member closest to its centre.
        members = np.flatnonzero(km.labels == rep.cluster)
        dists = np.linalg.norm(pts[members] - km.centers[rep.cluster], axis=1)
        assert rep.index == members[dists.argmin()]
        assert rep.workload in rep.members


def test_suite_diversity_stats():
    suites = ["A"] * 4 + ["B"] * 4
    pts = np.vstack([np.zeros((4, 2)), np.array([[0, 0], [4, 0], [0, 4], [4, 4]])])
    stats = {s.suite: s for s in suite_diversity(pts, [f"w{i}" for i in range(8)], suites)}
    assert stats["A"].mean_pairwise == pytest.approx(0.0)
    assert stats["B"].mean_pairwise > 0
    assert stats["B"].diameter == pytest.approx(np.sqrt(32))
    assert stats["A"].n_workloads == 4


def test_suite_diversity_single_member():
    pts = np.array([[0.0, 0.0], [3.0, 4.0]])
    stats = suite_diversity(pts, ["a", "b"], ["X", "Y"])
    assert stats[0].mean_pairwise == 0.0
    assert stats[0].mean_centroid_dist == pytest.approx(2.5)


def test_kernel_heterogeneity_on_real_profiles(suite_profiles):
    het = kernel_heterogeneity(suite_profiles, list(metrics.DIVERGENCE_SUBSPACE))
    by_name = dict(zip([p.workload for p in suite_profiles], het))
    # Single-kernel workloads have zero cross-kernel spread by definition.
    assert by_name["MUM"] == 0.0
    # NN's uniform distance kernel vs divergent argmin kernel must register.
    assert by_name["NN"] > 0.3
    assert np.all(het >= 0)


def test_real_subspace_claims(suite_profiles):
    """The abstract's coalescing-diversity workloads surface in our top ranks."""
    fm = FeatureMatrix.from_profiles(suite_profiles)
    coal = analyze_subspace(fm, metrics.COALESCING_SUBSPACE, "memory coalescing")
    top6 = set(coal.top(6))
    assert {"SS", "KM"} <= top6  # two of the paper's four named workloads
