"""End-to-end golden regression: raw suite → normalized matrix → PCA →
clusters → representatives.

``tests/fixtures/golden_analysis.json`` pins the full analysis pipeline's
output on the complete workload suite.  Matrix-valued artifacts compare at
``atol=1e-8`` (the snapshot itself is rounded to 1e-10, so this only
absorbs platform BLAS ulp drift); discrete outputs (cluster labels, chosen
K, representative sets) must match exactly.

If a mismatch is *intentional* — you changed a metric definition, the
normalization, PCA, clustering, or selection — regenerate the fixture and
review its diff:

    PYTHONPATH=src python scripts/regen_golden_analysis.py
"""

import json
import os

import numpy as np
import pytest

from repro.api import analyze
from repro.core.snapshot import SNAPSHOT_SCHEMA, analysis_snapshot

FIXTURE = os.path.join(
    os.path.dirname(__file__), os.pardir, "fixtures", "golden_analysis.json"
)

REGEN_HINT = (
    "if this change is intentional, regenerate the fixture with "
    "`PYTHONPATH=src python scripts/regen_golden_analysis.py` and review its diff"
)

with open(FIXTURE) as _fh:
    GOLDEN = json.load(_fh)


@pytest.fixture(scope="module")
def snapshot(suite_profiles):
    return analysis_snapshot(analyze(suite_profiles))


def _explain(section, detail=""):
    return f"golden analysis mismatch in {section!r}{detail}; {REGEN_HINT}"


def test_fixture_schema():
    assert GOLDEN["schema"] == SNAPSHOT_SCHEMA, _explain("schema")


def test_workload_set_and_suites(snapshot):
    assert snapshot["workloads"] == GOLDEN["workloads"], _explain("workloads")
    assert snapshot["suites"] == GOLDEN["suites"], _explain("suites")


def test_normalized_matrix(snapshot):
    got, want = snapshot["normalized"], GOLDEN["normalized"]
    assert got["metric_names"] == want["metric_names"], _explain(
        "normalized.metric_names"
    )
    assert got["dropped"] == want["dropped"], _explain("normalized.dropped")
    z_got, z_want = np.array(got["z"]), np.array(want["z"])
    assert z_got.shape == z_want.shape, _explain("normalized.z", " (shape)")
    worst = float(np.abs(z_got - z_want).max())
    assert np.allclose(z_got, z_want, atol=1e-8), _explain(
        "normalized.z", f" (max abs diff {worst:.3e})"
    )


def test_pca_loadings_signature(snapshot):
    got, want = snapshot["pca"], GOLDEN["pca"]
    assert got["n_components"] == want["n_components"], _explain("pca.n_components")
    assert np.allclose(
        got["explained_ratio"], want["explained_ratio"], atol=1e-8
    ), _explain("pca.explained_ratio")
    assert abs(got["retained"] - want["retained"]) < 1e-8, _explain("pca.retained")
    l_got, l_want = np.array(got["loadings"]), np.array(want["loadings"])
    worst = float(np.abs(l_got - l_want).max())
    assert np.allclose(l_got, l_want, atol=1e-8), _explain(
        "pca.loadings", f" (max abs diff {worst:.3e})"
    )


def test_cluster_assignments(snapshot):
    got, want = snapshot["clusters"], GOLDEN["clusters"]
    assert got["best_k"] == want["best_k"], _explain("clusters.best_k")
    if got["labels"] != want["labels"]:
        moved = [
            f"{w}: {a}->{b}"
            for w, a, b in zip(GOLDEN["workloads"], want["labels"], got["labels"])
            if a != b
        ]
        pytest.fail(_explain("clusters.labels", f" (moved: {', '.join(moved)})"))


def test_representatives(snapshot):
    got, want = snapshot["representatives"], GOLDEN["representatives"]
    assert [r["workload"] for r in got] == [r["workload"] for r in want], _explain(
        "representatives",
        f" (got {[r['workload'] for r in got]}, expected {[r['workload'] for r in want]})",
    )
    for g, w in zip(got, want):
        assert g["cluster_size"] == w["cluster_size"], _explain(
            "representatives", f" ({g['workload']} cluster_size)"
        )
        assert abs(g["weight"] - w["weight"]) < 1e-8, _explain(
            "representatives", f" ({g['workload']} weight)"
        )
        assert g["members"] == w["members"], _explain(
            "representatives", f" ({g['workload']} members)"
        )
