"""The stable ``repro.api`` facade and the legacy-entrypoint shims."""

import pytest

from repro.api import (
    CharacterizationConfig,
    CharacterizationResult,
    EvaluationResult,
    analyze,
    characterize,
    evaluate,
    trace_session,
)

SMALL = ["VA", "BS", "KM", "SS", "HG"]


@pytest.fixture(scope="module")
def small_result():
    return characterize(CharacterizationConfig(abbrevs=SMALL, sample_blocks=16))


def test_characterize_returns_result_object(small_result):
    assert isinstance(small_result, CharacterizationResult)
    assert [p.workload for p in small_result.profiles] == SMALL
    assert small_result.failures == []


def test_characterize_rejects_legacy_call_shape():
    with pytest.raises(TypeError, match="CharacterizationConfig"):
        characterize(["VA", "BS"])


def test_analyze_accepts_result_or_profiles(small_result):
    from_result = analyze(small_result)
    from_profiles = analyze(small_result.profiles)
    assert from_result.workloads == from_profiles.workloads
    assert from_result.kmeans_best_k == from_profiles.kmeans_best_k
    assert from_result.representatives


def test_evaluate_end_to_end(small_result):
    ev = evaluate(small_result, subset_k=2)
    assert isinstance(ev, EvaluationResult)
    assert len(ev.representatives) == 2
    assert len(ev.weights) == 2
    assert abs(sum(ev.weights) - 1.0) < 1e-9
    assert 0.0 <= ev.mean_error < 1.0
    assert -1.0 <= ev.kendall_tau <= 1.0
    assert isinstance(ev.same_winner, bool)


def test_evaluate_reuses_provided_analysis(small_result):
    analysis = analyze(small_result)
    a = evaluate(small_result, subset_k=2, analysis=analysis)
    b = evaluate(small_result, subset_k=2)
    assert a.representatives == b.representatives


def test_trace_session_enables_and_exports(tmp_path):
    from repro.telemetry import get_telemetry, load_trace

    path = tmp_path / "session.jsonl"
    with trace_session(str(path)) as tele:
        assert tele is get_telemetry() and tele.enabled
        with tele.span("custom"):
            tele.count("my.counter", 3)
    assert not get_telemetry().enabled
    data = load_trace(str(path))
    assert [sp["name"] for sp in data.spans] == ["custom"]
    assert data.counters["my.counter"] == 3


def test_trace_session_writes_on_error(tmp_path):
    path = tmp_path / "crash.jsonl"
    with pytest.raises(RuntimeError):
        with trace_session(str(path)) as tele:
            tele.count("before.crash")
            raise RuntimeError("boom")
    from repro.telemetry import load_trace

    assert load_trace(str(path)).counters["before.crash"] == 1


def test_top_level_reexports():
    import repro
    import repro.api as api

    assert repro.characterize is api.characterize
    assert repro.analyze is api.analyze
    assert repro.evaluate is api.evaluate
    assert repro.trace_session is api.trace_session
    assert repro.CharacterizationConfig is CharacterizationConfig


# ----------------------------------------------------------------------
# Legacy shims (removed)
# ----------------------------------------------------------------------


def test_legacy_shims_are_removed():
    import repro.core
    import repro.core.pipeline as pipeline

    for name in ("characterize_suites", "characterize_and_analyze"):
        assert not hasattr(pipeline, name)
        assert not hasattr(repro.core, name)
        assert name not in repro.core.__all__


# ----------------------------------------------------------------------
# REPRO_JOBS validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("bad", ["0", "-3"])
def test_resolve_jobs_rejects_nonpositive_env(monkeypatch, bad):
    from repro.core.runtime import resolve_jobs

    monkeypatch.setenv("REPRO_JOBS", bad)
    with pytest.raises(ValueError, match="REPRO_JOBS must be a positive integer"):
        resolve_jobs(None)


def test_resolve_jobs_explicit_zero_still_means_all_cores(monkeypatch):
    import os

    from repro.core.runtime import resolve_jobs

    monkeypatch.setenv("REPRO_JOBS", "0")  # env is invalid...
    assert resolve_jobs(0) == (os.cpu_count() or 1)  # ...explicit 0 wins
