"""Out-of-sample workload placement."""

import numpy as np
import pytest

from repro.api import analyze
from repro.core.placement import place_workload
from repro.workloads.runner import run_workload


@pytest.fixture(scope="module")
def analysis(suite_profiles):
    return analyze(suite_profiles)


def test_replaced_suite_member_lands_on_itself(analysis):
    """Re-characterizing a suite workload must find itself at distance ~0."""
    profile = run_workload("VA")
    placement = place_workload(profile, analysis)
    assert placement.nearest == "VA"
    assert placement.neighbors[0][1] == pytest.approx(0.0, abs=1e-9)


def test_rescaled_member_stays_in_neighborhood(analysis):
    from repro.workloads import registry

    cls = registry.get("VA")
    profile = run_workload(cls(n=4096))  # quarter-size input
    placement = place_workload(profile, analysis)
    assert "VA" in [w for w, _ in placement.neighbors[:3]]


def test_neighbors_sorted_and_complete(analysis):
    placement = place_workload(run_workload("HG"), analysis)
    dists = [d for _, d in placement.neighbors]
    assert dists == sorted(dists)
    assert len(placement.neighbors) == len(analysis.workloads)


def test_cluster_assignment_valid(analysis):
    placement = place_workload(run_workload("MM"), analysis)
    assert 0 <= placement.cluster < analysis.kmeans.k


def test_novelty_detection(analysis):
    # A suite member is by definition not novel relative to the suite.
    member = place_workload(run_workload("STEN"), analysis)
    assert not member.is_novel(quantile=0.99)
    # Novelty threshold is monotone in the quantile.
    assert member._suite_quantile(0.5) <= member._suite_quantile(0.95)


def test_scores_dimensionality(analysis):
    placement = place_workload(run_workload("SAD"), analysis)
    assert placement.scores.shape == (analysis.pca.n_components,)
    assert np.isfinite(placement.scores).all()
