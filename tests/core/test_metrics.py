"""Characteristic registry and extraction semantics."""

import numpy as np
import pytest

from repro.core import metrics
from repro.trace.profile import (
    BranchStats,
    GlobalMemStats,
    KernelProfile,
    LocalityStats,
    SharedMemStats,
    WorkloadProfile,
)


def _kernel(name="k", thread_instrs=None, warp_instrs=None, **kw) -> KernelProfile:
    return KernelProfile(
        kernel_name=name,
        grid=(4, 1),
        block=(128, 1),
        total_blocks=4,
        profiled_blocks=4,
        threads_total=512,
        thread_instrs=thread_instrs or {"int": 80, "fp": 20},
        warp_instrs=warp_instrs or {"int": 20, "fp": 5},
        **kw,
    )


def test_registry_unique_and_grouped():
    specs = metrics.all_metrics()
    names = [s.name for s in specs]
    assert len(names) == len(set(names))
    assert len(names) >= 35
    groups = metrics.metric_groups()
    assert "instruction mix" in groups
    assert "branch divergence" in groups
    assert "memory coalescing" in groups
    assert all(s.description for s in specs)


def test_subspaces_reference_registered_metrics():
    names = set(metrics.metric_names())
    for sub in metrics.SUBSPACES.values():
        assert set(sub) <= names


def test_mix_fractions_sum_to_one():
    k = _kernel()
    wp = WorkloadProfile("w", "s", [k])
    mix = [
        metrics.metric(name).workload_value(wp)
        for name in metrics.metric_names()
        if name.startswith("mix.")
    ]
    assert sum(mix) == pytest.approx(1.0)


def test_weighted_aggregation_over_kernels():
    small = _kernel("a", {"int": 100}, {"int": 25})
    big = _kernel("b", {"fp": 300}, {"fp": 75})
    wp = WorkloadProfile("w", "s", [small, big])
    # Weights: 25 vs 75 warp instructions.
    fp = metrics.metric("mix.fp").workload_value(wp)
    assert fp == pytest.approx(0.75)
    intf = metrics.metric("mix.int").workload_value(wp)
    assert intf == pytest.approx(0.25)


def test_log_metrics():
    k = _kernel()
    wp = WorkloadProfile("w", "s", [k])
    assert metrics.metric("par.threads_log").workload_value(wp) == pytest.approx(np.log2(512))
    assert metrics.metric("par.block_size_log").workload_value(wp) == pytest.approx(7.0)
    assert metrics.metric("par.blocks_log").workload_value(wp) == pytest.approx(2.0)


def test_divergence_metrics_from_branch_stats():
    k = _kernel(branch=BranchStats(events=10, divergent=4, if_events=10))
    wp = WorkloadProfile("w", "s", [k])
    assert metrics.metric("div.rate").workload_value(wp) == pytest.approx(0.4)
    assert metrics.metric("div.loop_frac").workload_value(wp) == 0.0


def test_coalescing_metrics_from_gmem_stats():
    g = GlobalMemStats(accesses=10, transactions_32b=40, transactions_128b=10, coalesced=10)
    k = _kernel(gmem=g)
    wp = WorkloadProfile("w", "s", [k])
    assert metrics.metric("coal.t32_per_access").workload_value(wp) == pytest.approx(4.0)
    assert metrics.metric("coal.coalesced_frac").workload_value(wp) == pytest.approx(1.0)


def test_locality_metrics_empty_profile_are_zero():
    k = _kernel()
    wp = WorkloadProfile("w", "s", [k])
    for name in metrics.metric_names():
        if name.startswith("loc."):
            assert metrics.metric(name).workload_value(wp) == 0.0


def test_shared_conflict_degree_default_one():
    k = _kernel(shmem=SharedMemStats())
    wp = WorkloadProfile("w", "s", [k])
    assert metrics.metric("shm.conflict_degree").workload_value(wp) == 1.0


def test_extract_vector_full_and_subset():
    wp = WorkloadProfile("w", "s", [_kernel()])
    full = metrics.extract_vector(wp)
    assert set(full) == set(metrics.metric_names())
    sub = metrics.extract_vector(wp, ["mix.int", "div.rate"])
    assert list(sub) == ["mix.int", "div.rate"]


def test_extract_kernel_vector():
    k = _kernel()
    v = metrics.extract_kernel_vector(k, ["mix.int"])
    assert v["mix.int"] == pytest.approx(0.8)


def test_empty_workload_returns_zero():
    wp = WorkloadProfile("w", "s", [])
    assert metrics.metric("mix.int").workload_value(wp) == 0.0


def test_simd_efficiency_defaults_to_one():
    k = _kernel()
    wp = WorkloadProfile("w", "s", [k])
    assert metrics.metric("div.simd_efficiency").workload_value(wp) == 1.0


def test_all_metrics_finite_on_real_profiles(suite_profiles):
    for profile in suite_profiles:
        vec = metrics.extract_vector(profile)
        for name, value in vec.items():
            assert np.isfinite(value), f"{profile.workload}.{name} = {value}"


def test_real_suite_known_extremes(suite_profiles):
    by_name = {p.workload: p for p in suite_profiles}
    vec = lambda w: metrics.extract_vector(by_name[w])
    # NB is the FP/ILP monster; VA has no FP at all beyond the add.
    assert vec("NB")["mix.fp"] > 0.3
    assert vec("TR")["mix.fp"] == 0.0
    # MRIQ leans on the SFU; SAD does not.
    assert vec("MRIQ")["mix.sfu"] > vec("SAD")["mix.sfu"]
    # KM's point-major layout is uncoalesced; VA is perfect.
    assert vec("KM")["coal.t32_per_access"] > 8.0
    assert vec("VA")["coal.coalesced_frac"] == 1.0
    # MUM diverges much harder than MM and fetches through textures.
    assert vec("MUM")["div.simd_efficiency"] < vec("MM")["div.simd_efficiency"]
    assert vec("MUM")["mix.texture"] > 0.05
    assert vec("KM")["mix.texture"] > 0.0
    # HG is the atomic workload.
    assert vec("HG")["mix.atomic"] > 0.05


def test_workload_level_metrics():
    k1 = _kernel("a")
    k2 = _kernel("b")
    wp = WorkloadProfile("w", "s", [k1, k2, _kernel("a")])
    assert metrics.metric("krn.launches_log").workload_value(wp) == pytest.approx(np.log2(3))
    assert metrics.metric("krn.unique_kernels_log").workload_value(wp) == pytest.approx(1.0)
    # Kernel-level fallback is constant (dropped by standardization later).
    assert metrics.metric("krn.launches_log").fn(k1) == 0.0


def test_workload_metrics_on_real_suite(suite_profiles):
    by = {p.workload: p for p in suite_profiles}
    launches = metrics.metric("krn.launches_log")
    assert launches.workload_value(by["GA"]) > launches.workload_value(by["VA"])
    uniq = metrics.metric("krn.unique_kernels_log")
    assert uniq.workload_value(by["LUD"]) > uniq.workload_value(by["MUM"])
