"""Golden regression: the pass-based collector reproduces the monolith.

``tests/fixtures/golden_metrics.json`` was produced by the pre-refactor
monolithic ``KernelTraceCollector`` (one class computing every analysis
inline).  The decomposed pass architecture must yield *numerically
identical* metric vectors — not merely close — on both execution engines,
so any drift in a pass's arithmetic, event ordering, or aggregation shows
up as a hard failure here.
"""

import json
import os

import pytest

from repro.core import metrics
from repro.workloads.runner import run_workload

FIXTURE = os.path.join(
    os.path.dirname(__file__), os.pardir, "fixtures", "golden_metrics.json"
)

with open(FIXTURE) as _fh:
    GOLDEN = json.load(_fh)


@pytest.mark.parametrize("engine", ["interpreted", "compiled"])
@pytest.mark.parametrize("abbrev", sorted(GOLDEN["workloads"]))
def test_metric_vector_matches_pre_refactor_monolith(abbrev, engine):
    profile = run_workload(
        abbrev,
        verify=False,
        sample_blocks=GOLDEN["sample_blocks"],
        engine=engine,
    )
    vector = metrics.extract_vector(profile)
    expected = GOLDEN["workloads"][abbrev]
    assert set(vector) == set(expected)
    mismatched = {
        name: (vector[name], expected[name])
        for name in expected
        if vector[name] != expected[name]
    }
    assert not mismatched, f"{abbrev}/{engine}: drift vs monolith: {mismatched}"
