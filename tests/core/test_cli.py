"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_prints_all_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for abbrev in ("VA", "MUM", "SS", "KM", "TPACF"):
        assert abbrev in out


def test_characterize_subset(capsys):
    assert main(["characterize", "VA", "--sample-blocks", "8"]) == 0
    out = capsys.readouterr().out
    assert "instruction mix" in out
    assert "VA" in out


def test_characterize_csv_export(tmp_path, capsys):
    path = tmp_path / "features.csv"
    assert main(["characterize", "VA", "HG", "--sample-blocks", "8", "--csv", str(path)]) == 0
    lines = path.read_text().strip().splitlines()
    assert lines[0].startswith("workload,suite,")
    assert len(lines) == 3


def test_analyze_runs_on_cached_suite(capsys, suite_profiles):
    # suite_profiles fixture has warmed the on-disk cache for all workloads.
    assert main(["analyze"]) == 0
    out = capsys.readouterr().out
    assert "BIC-optimal K" in out
    assert "representative" in out


def test_subspace_known(capsys, suite_profiles):
    assert main(["subspace", "branch divergence"]) == 0
    out = capsys.readouterr().out
    assert "variation" in out


def test_subspace_unknown_errors(capsys):
    assert main(["subspace", "nope"]) == 2
    assert "unknown subspace" in capsys.readouterr().err


def test_stress_all_blocks(capsys, suite_profiles):
    assert main(["stress", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "branch divergence unit" in out
    assert "texture cache" in out


def test_stress_unknown_block(capsys, suite_profiles):
    assert main(["stress", "--block", "warp turbo"]) == 2


def test_evaluate(capsys, suite_profiles):
    assert main(["evaluate", "--subset-k", "6"]) == 0
    out = capsys.readouterr().out
    assert "mean |error|" in out
    assert "same winner" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_report_to_stdout(capsys, suite_profiles):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert "# GPGPU workload characterization report" in out
    assert "## Clusters" in out


def test_report_to_file(tmp_path, suite_profiles):
    path = tmp_path / "report.md"
    assert main(["report", "-o", str(path)]) == 0
    text = path.read_text()
    assert "Functional-block stress" in text
    assert "| suite |" in text


def test_disasm_stats(capsys):
    assert main(["disasm", "RD"]) == 0
    out = capsys.readouterr().out
    assert "reduce0_interleaved_divergent" in out
    assert "reg pressure" in out


def test_disasm_full(capsys):
    assert main(["disasm", "VA", "--full"]) == 0
    out = capsys.readouterr().out
    assert ".kernel vectoradd" in out
    assert "ld.global" in out


def test_disasm_unknown(capsys):
    assert main(["disasm", "NOPE"]) == 2


def test_characterize_with_jobs_flag(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["characterize", "VA", "--sample-blocks", "8", "--jobs", "2"]) == 0
    assert "VA" in capsys.readouterr().out


def test_profile_cache_inspection_and_purge(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["profile-cache"]) == 0
    assert "empty" in capsys.readouterr().out
    assert main(["characterize", "VA", "--sample-blocks", "8"]) == 0
    capsys.readouterr()
    assert main(["profile-cache"]) == 0
    out = capsys.readouterr().out
    assert "VA" in out and "fresh" in out
    # --purge only touches stale/orphan shards: the fresh one survives.
    assert main(["profile-cache", "--purge"]) == 0
    assert "removed 0 stale/orphan shard" in capsys.readouterr().out
    assert len(list(tmp_path.glob("*.profile.json"))) == 1
    assert main(["profile-cache", "--clear"]) == 0
    assert "removed 1 shard" in capsys.readouterr().out
    assert list(tmp_path.glob("*.profile.json")) == []


def test_bench_quick_writes_schema_json(capsys, tmp_path, monkeypatch):
    import json

    from repro.core import bench

    # Keep the CLI path intact but shrink both baskets to seconds.
    monkeypatch.setattr(bench, "QUICK_BASKET", (("VA", {"n": 1 << 10}),))
    monkeypatch.setattr(bench, "PASS_BASKET", (("VA", {"n": 1 << 10}),))
    out_path = tmp_path / "BENCH_simt.json"
    assert main(["bench", "--quick", "--sample-blocks", "4", "-o", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "engine benchmark (quick)" in out
    assert "per-pass collection cost" in out

    doc = json.loads(out_path.read_text())
    assert doc["benchmark"] == "simt-engine"
    assert doc["quick"] is True
    assert doc["sample_blocks"] == 4
    for key in ("python", "machine", "workloads", "total_interpreted_s", "total_compiled_s", "speedup"):
        assert key in doc
    (entry,) = doc["workloads"]
    assert entry["workload"] == "VA"
    assert set(entry) == {"workload", "scale", "interpreted_s", "compiled_s", "speedup"}

    # Per-pass-set timings: all, mix+branch, then each single pass.
    names = [e["name"] for e in doc["pass_sets"]]
    assert names[:2] == ["all", "mix+branch"]
    assert set(names[2:]) == {"mix", "ilp", "branch", "coalescing", "shared", "reuse", "texture"}
    for e in doc["pass_sets"]:
        assert set(e) == {"name", "passes", "seconds"}
    assert doc["demand_speedup"] is not None

    # Profiled-path stage: per-event callbacks vs columnar batch buffers.
    assert set(doc["profiled_speedup"]) == {"callback_s", "columnar_s", "speedup"}
    assert doc["profiled_speedup"]["callback_s"] > 0
    assert doc["profiled_speedup"]["columnar_s"] > 0
    assert "profiled path" in out

    # DSE sweep stage: cold vs warm timing-shard cache over the quick basket.
    sweep = doc["dse_sweep"]
    assert set(sweep) == {"cold_s", "warm_s", "speedup", "cells", "warm_hits", "hit_rate"}
    assert sweep["cells"] > 0
    assert sweep["warm_hits"] == sweep["cells"]  # warm rerun hits every shard
    assert sweep["hit_rate"] == 1.0
    assert "dse sweep" in out

    # Telemetry-overhead stage: disabled vs enabled on the quick basket.
    assert set(doc["telemetry"]) == {"disabled_s", "enabled_s", "overhead"}
    assert doc["telemetry"]["disabled_s"] > 0
    assert "telemetry overhead" in out
    # The stage leaves the global registry the way it found it: off.
    from repro.telemetry import get_telemetry

    assert not get_telemetry().enabled


def test_fuzz_smoke_and_corpus_replay(capsys, tmp_path):
    assert main(["fuzz", "--n", "5", "--seed", "1"]) == 0
    assert "5 cases" in capsys.readouterr().out

    # A saved case replays through the CLI's --replay path.
    from repro.fuzz import generate_case, save_case

    save_case(generate_case(1 << 20), str(tmp_path), tag="t")
    assert main(["fuzz", "--replay", "--corpus-dir", str(tmp_path)]) == 0
    assert "1 cases" in capsys.readouterr().out


def test_fuzz_replay_empty_corpus_fails(capsys, tmp_path):
    assert main(["fuzz", "--replay", "--corpus-dir", str(tmp_path / "nope")]) == 1
    assert "no corpus entries" in capsys.readouterr().err


def test_list_json_schema(capsys):
    import json

    assert main(["list", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.workloads/v1"
    by_abbrev = {w["abbrev"]: w for w in doc["workloads"]}
    assert set(by_abbrev["VA"]) == {"suite", "abbrev", "name", "description"}
    assert by_abbrev["VA"]["suite"] == "CUDA SDK"


def test_characterize_json_schema(capsys):
    import json

    assert main(["characterize", "VA", "--sample-blocks", "8", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.feature-matrix/v1"
    (entry,) = doc["workloads"]
    assert entry["workload"] == "VA"
    assert set(entry["values"]) == set(doc["metrics"])
    assert all(isinstance(v, float) for v in entry["values"].values())


def test_characterize_json_csv_conflict(capsys, tmp_path):
    with pytest.raises(SystemExit) as exc:
        main(["characterize", "VA", "--json", "--csv", str(tmp_path / "x.csv")])
    assert exc.value.code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_characterize_unknown_metric_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["characterize", "VA", "--metrics", "bogus.metric"])
    assert exc.value.code == 2
    assert "unknown metric" in capsys.readouterr().err


def test_characterize_unknown_workload_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["characterize", "NOPE"])
    assert exc.value.code == 2


def test_stress_json_schema(capsys, suite_profiles):
    import json

    assert main(["stress", "--json", "--top", "3"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.stress/v1"
    assert doc["top"] == 3
    for block, ranking in doc["blocks"].items():
        assert len(ranking) == 3
        assert all(set(r) == {"workload", "score"} for r in ranking)


def test_evaluate_json_schema(capsys, suite_profiles):
    import json

    assert main(["evaluate", "--subset-k", "6", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.evaluate/v1"
    assert doc["subset_k"] == 6 and doc["model"] == "roofline"
    assert len(doc["representatives"]) == 6
    assert all(set(r) == {"workload", "weight"} for r in doc["representatives"])
    names = [d["name"] for d in doc["designs"]]
    assert "base" in names and "fat" in names
    for d in doc["designs"]:
        assert set(d) == {"name", "full_speedup", "subset_speedup", "relative_error"}
    assert isinstance(doc["kendall_tau"], float)
    assert isinstance(doc["same_winner"], bool)


def test_evaluate_unknown_model_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["evaluate", "--model", "oracle"])
    assert exc.value.code == 2
    assert "unknown timing model" in capsys.readouterr().err


def test_dse_sweep_json_schema(capsys, suite_profiles):
    import json

    assert main(["dse", "sweep", "VA", "BS", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.dse-sweep/v1"
    assert doc["space"] == "default" and doc["model"] == "roofline"
    assert doc["workloads"] == ["VA", "BS"]
    assert len(doc["designs"]) == 16
    for d in doc["designs"]:
        assert set(d) == {"name", "cost", "speedup", "pareto"}
    assert any(d["pareto"] for d in doc["designs"])
    assert {rec["field"] for rec in doc["sensitivity"]} >= {"num_sms", "dram_bandwidth"}
    assert set(doc["cache"]) == {"hits", "misses"}


def test_dse_sweep_quick_conflicts_with_workloads(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["dse", "sweep", "VA", "--quick"])
    assert exc.value.code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_dse_sweep_text_output(capsys, suite_profiles):
    assert main(["dse", "sweep", "VA", "BS", "--model", "cycle"]) == 0
    out = capsys.readouterr().out
    assert "cycle model" in out
    assert "per-axis sensitivity" in out
    assert "cache:" in out


def test_dse_sweep_custom_design_space(capsys, tmp_path):
    import json

    spec = {
        "schema": "repro.design-space/v1",
        "name": "mine",
        "sweep": "one_hot",
        "baseline": {"name": "base"},
        "axes": [
            {"field": "num_sms", "points": [{"name": "sm32", "value": 32}]},
        ],
        "points": [],
    }
    path = tmp_path / "space.json"
    path.write_text(json.dumps(spec))
    assert main(["dse", "sweep", "VA", "--design-space", str(path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["space"] == "mine"
    assert [d["name"] for d in doc["designs"]] == ["base", "sm32"]


def test_dse_sweep_bad_design_space_is_usage_error(capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": "nope/v9"}')
    with pytest.raises(SystemExit) as exc:
        main(["dse", "sweep", "VA", "--design-space", str(path)])
    assert exc.value.code == 2
    assert "schema" in capsys.readouterr().err


def test_dse_compare_json_schema(capsys, suite_profiles):
    import json

    assert main(["dse", "compare", "VA", "BS", "NN", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.dse-compare/v1"
    assert doc["models"] == ["roofline", "cycle"]
    for d in doc["designs"]:
        assert set(d) == {"name", "roofline", "cycle"}
    (agreement,) = doc["rank_agreement"]
    assert agreement["models"] == ["roofline", "cycle"]
    assert -1.0 <= agreement["kendall_tau"] <= 1.0


def test_dse_compare_needs_two_models(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["dse", "compare", "VA", "--models", "roofline"])
    assert exc.value.code == 2
    assert "at least two" in capsys.readouterr().err


def test_dse_fidelity_json_schema(capsys, suite_profiles):
    import json

    assert main(["dse", "fidelity", "--subset-k", "4,6", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.dse-fidelity/v1"
    assert doc["model"] == "roofline"
    assert [p["subset_k"] for p in doc["points"]] == [4, 6]
    for p in doc["points"]:
        assert set(p) == {
            "subset_k",
            "representatives",
            "mean_error",
            "max_error",
            "kendall_tau",
            "same_winner",
        }
        assert len(p["representatives"]) == p["subset_k"]


def test_dse_fidelity_bad_subset_k_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["dse", "fidelity", "--subset-k", "2,two"])
    assert exc.value.code == 2
    assert "comma-separated integers" in capsys.readouterr().err


def test_dse_fidelity_subset_k_exceeding_workloads(capsys, suite_profiles):
    with pytest.raises(SystemExit) as exc:
        main(["dse", "fidelity", "VA", "BS", "--subset-k", "8"])
    assert exc.value.code == 2
    assert "exceeds" in capsys.readouterr().err
