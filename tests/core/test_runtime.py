"""Parallel characterization runtime: parity, sharded cache, fault isolation."""

import importlib.util
import os
import sys

import pytest

from repro.api import characterize
from repro.core import metrics
from repro.core.runtime import (
    CharacterizationConfig,
    CharacterizationError,
    ProfileCache,
    RunObserver,
    resolve_jobs,
    run_characterization,
)
from repro.workloads import registry
from repro.workloads.base import Workload

#: Small, behaviourally spread subset so the parity tests stay fast.
PARITY_SET = ["VA", "SS", "HG", "RD"]


class Recorder(RunObserver):
    """Collects every event; exposes per-kind workload lists for asserts."""

    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)

    def workloads(self, kind):
        return [e.workload for e in self.events if e.kind == kind]


class CrashingWorkload(Workload):
    abbrev = "XCRASH"
    name = "crash probe"
    suite = "CUDA SDK"
    description = "always raises inside run()"

    def run(self, ctx):
        raise RuntimeError("deliberate crash")

    def check(self, ctx):
        pass


class DyingWorkload(Workload):
    abbrev = "XDIE"
    name = "hard-death probe"
    suite = "CUDA SDK"
    description = "kills its worker process outright"

    def run(self, ctx):
        os._exit(17)

    def check(self, ctx):
        pass


class HangingWorkload(Workload):
    abbrev = "XHANG"
    name = "hang probe"
    suite = "CUDA SDK"
    description = "sleeps far past any reasonable budget"

    def run(self, ctx):
        import time

        time.sleep(120)

    def check(self, ctx):
        pass


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture
def register(monkeypatch):
    def _register(cls):
        registry._ensure_loaded()
        monkeypatch.setitem(registry._REGISTRY, cls.abbrev, cls)

    return _register


# ---------------------------------------------------------------------------
# Parallel == serial


def test_parallel_results_identical_to_serial(cache_dir):
    serial = run_characterization(
        CharacterizationConfig(abbrevs=PARITY_SET, sample_blocks=8, use_cache=False)
    )
    parallel = run_characterization(
        CharacterizationConfig(
            abbrevs=PARITY_SET, sample_blocks=8, use_cache=False, jobs=2
        )
    )
    assert [p.workload for p in serial.profiles] == PARITY_SET
    assert [p.workload for p in parallel.profiles] == PARITY_SET
    for ps, pp in zip(serial.profiles, parallel.profiles):
        assert ps.total_thread_instrs == pp.total_thread_instrs
        assert ps.total_warp_instrs == pp.total_warp_instrs
        assert metrics.extract_vector(ps) == metrics.extract_vector(pp)


def test_parallel_populates_same_cache_shards(cache_dir):
    run_characterization(
        CharacterizationConfig(abbrevs=PARITY_SET[:2], sample_blocks=8, jobs=2)
    )
    rec = Recorder()
    serial = run_characterization(
        CharacterizationConfig(abbrevs=PARITY_SET[:2], sample_blocks=8), rec
    )
    assert serial.cache_hits == 2
    assert rec.workloads("workload_cache_hit") == PARITY_SET[:2]


# ---------------------------------------------------------------------------
# Sharded cache behaviour


def test_cache_hit_miss_events_and_shard_files(cache_dir):
    config = CharacterizationConfig(abbrevs=["VA"], sample_blocks=8)
    cold = Recorder()
    first = run_characterization(config, cold)
    assert first.cache_misses == 1 and first.cache_hits == 0
    assert cold.workloads("workload_started") == ["VA"]
    assert cold.workloads("workload_finished") == ["VA"]
    finished = next(e for e in cold.events if e.kind == "workload_finished")
    assert finished.warp_instrs > 0 and finished.wall_seconds > 0

    warm = Recorder()
    second = run_characterization(config, warm)
    assert second.cache_hits == 1 and second.cache_misses == 0
    assert warm.workloads("workload_started") == []
    assert warm.workloads("workload_cache_hit") == ["VA"]
    assert metrics.extract_vector(first.profiles[0]) == metrics.extract_vector(
        second.profiles[0]
    )
    assert len(list(cache_dir.glob("*.profile.json"))) == 1
    # Atomic writes: no temp files survive.
    assert not [p for p in cache_dir.iterdir() if ".tmp" in p.name]


def _load_temp_workload(path, marker):
    """(Re)write a trivial workload module at ``path`` and import it."""
    path.write_text(
        "from repro.workloads.base import Workload\n"
        "\n"
        "class TempWorkload(Workload):\n"
        '    abbrev = "XTMP"\n'
        '    name = "temp"\n'
        '    suite = "CUDA SDK"\n'
        '    description = "cache invalidation probe"\n'
        "\n"
        f"    def run(self, ctx):  # {marker}\n"
        "        pass\n"
        "\n"
        "    def check(self, ctx):\n"
        "        pass\n"
    )
    spec = importlib.util.spec_from_file_location("repro_test_tempwl", str(path))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_editing_workload_module_invalidates_only_its_shard(
    cache_dir, tmp_path, register, monkeypatch
):
    module_path = tmp_path / "tempwl.py"
    module = _load_temp_workload(module_path, "v1")
    # inspect.getfile() resolves the digest source through sys.modules.
    monkeypatch.setitem(sys.modules, "repro_test_tempwl", module)
    register(module.TempWorkload)
    config = CharacterizationConfig(abbrevs=["XTMP", "VA"], sample_blocks=8)

    first = run_characterization(config)
    assert first.cache_misses == 2
    assert len(list(cache_dir.glob("*.profile.json"))) == 2

    warm = Recorder()
    run_characterization(config, warm)
    assert sorted(warm.workloads("workload_cache_hit")) == ["VA", "XTMP"]

    # Edit the workload module: only the XTMP shard may go stale.
    module = _load_temp_workload(module_path, "v2-edited")
    sys.modules["repro_test_tempwl"] = module  # monkeypatch removes it at teardown
    register(module.TempWorkload)
    edited = Recorder()
    result = run_characterization(config, edited)
    assert edited.workloads("workload_cache_hit") == ["VA"]
    assert edited.workloads("workload_started") == ["XTMP"]
    assert result.cache_hits == 1 and result.cache_misses == 1

    cache = ProfileCache()
    statuses = {(e.workload, e.status) for e in cache.entries()}
    assert ("XTMP", "stale") in statuses  # the superseded shard
    assert ("XTMP", "fresh") in statuses  # the rebuilt one
    assert ("VA", "fresh") in statuses
    # purge removes exactly the stale shard.
    removed = cache.purge(stale_only=True)
    assert len(removed) == 1 and "XTMP" in os.path.basename(removed[0])


def test_editing_shared_sources_invalidates_everything(cache_dir, monkeypatch):
    config = CharacterizationConfig(abbrevs=["VA"], sample_blocks=8)
    run_characterization(config)
    # Simulate a simulator/collector edit by changing the shared digest.
    monkeypatch.setattr(
        ProfileCache, "_shared_digest", lambda self: "simulated-source-edit"
    )
    rec = Recorder()
    result = run_characterization(config, rec)
    assert result.cache_misses == 1
    assert rec.workloads("workload_started") == ["VA"]


def test_editing_one_pass_reruns_only_that_pass(cache_dir, monkeypatch):
    from repro.trace.serialize import workload_section_bytes

    config = CharacterizationConfig(abbrevs=["VA"], sample_blocks=8)
    first = run_characterization(config)
    assert first.cache_misses == 1
    baseline = {
        name: workload_section_bytes(first.profiles[0], name)
        for name in first.profiles[0].passes
    }

    # Simulate editing the reuse pass module: only its digest changes.
    original = ProfileCache.pass_digest

    def edited(self, name):
        return "simulated-edit" if name == "reuse" else original(self, name)

    monkeypatch.setattr(ProfileCache, "pass_digest", edited)

    # A run that doesn't need the edited pass still hits the cache outright.
    subset = Recorder()
    sub = run_characterization(
        CharacterizationConfig(
            abbrevs=["VA"], sample_blocks=8, passes=("mix", "branch")
        ),
        subset,
    )
    assert sub.cache_hits == 1 and sub.cache_misses == 0
    assert subset.workloads("workload_started") == []

    # An all-pass run reruns exactly the stale pass and merges the rest.
    rec = Recorder()
    result = run_characterization(config, rec)
    started = [e for e in rec.events if e.kind == "workload_started"]
    assert [e.workload for e in started] == ["VA"]
    assert started[0].passes == ("reuse",)
    profile = result.profiles[0]
    assert profile.passes == first.profiles[0].passes
    for name in profile.passes:
        assert workload_section_bytes(profile, name) == baseline[name]

    # The refreshed shard records the new digest, so the next run full-hits.
    warm = Recorder()
    again = run_characterization(config, warm)
    assert again.cache_hits == 1 and again.cache_misses == 0
    assert warm.workloads("workload_started") == []


def test_corrupt_shard_is_treated_as_miss(cache_dir):
    config = CharacterizationConfig(abbrevs=["VA"], sample_blocks=8)
    run_characterization(config)
    shard = next(cache_dir.glob("*.profile.json"))
    shard.write_text("{ not json")
    result = run_characterization(config)
    assert result.cache_misses == 1
    assert result.profiles[0].workload == "VA"


# ---------------------------------------------------------------------------
# Fault isolation


@pytest.mark.parametrize("jobs", [1, 2])
def test_crashing_workload_is_structured_failure_not_abort(cache_dir, register, jobs):
    register(CrashingWorkload)
    rec = Recorder()
    result = run_characterization(
        CharacterizationConfig(
            abbrevs=["XCRASH", "VA"], sample_blocks=8, use_cache=False, jobs=jobs
        ),
        rec,
    )
    assert [p.workload for p in result.profiles] == ["VA"]
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.workload == "XCRASH"
    assert failure.attempts == 2  # retried once, then failed
    assert "deliberate crash" in failure.error
    assert rec.workloads("workload_failed") == ["XCRASH"]
    assert rec.workloads("workload_finished") == ["VA"]


def test_worker_process_death_is_isolated(cache_dir, register):
    register(DyingWorkload)
    result = run_characterization(
        CharacterizationConfig(
            abbrevs=["XDIE", "VA"], sample_blocks=8, use_cache=False, jobs=2
        )
    )
    assert [p.workload for p in result.profiles] == ["VA"]
    assert len(result.failures) == 1
    assert result.failures[0].workload == "XDIE"
    assert "worker process died" in result.failures[0].error


def test_hung_workload_times_out_without_killing_suite(cache_dir, register):
    register(HangingWorkload)
    result = run_characterization(
        CharacterizationConfig(
            abbrevs=["XHANG", "VA"],
            sample_blocks=8,
            use_cache=False,
            jobs=2,
            retries=0,
            workload_timeout=1.0,
        )
    )
    assert [p.workload for p in result.profiles] == ["VA"]
    assert len(result.failures) == 1
    assert result.failures[0].workload == "XHANG"
    assert "timed out" in result.failures[0].error


def test_characterize_raises_structured_error(cache_dir, register):
    register(CrashingWorkload)
    with pytest.raises(CharacterizationError) as exc_info:
        characterize(
            CharacterizationConfig(abbrevs=["XCRASH"], sample_blocks=8, use_cache=False)
        )
    assert exc_info.value.failures[0].workload == "XCRASH"


# ---------------------------------------------------------------------------
# Config plumbing


def test_resolve_jobs(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(2) == 2  # explicit beats the environment
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError):
        resolve_jobs(None)


def test_unknown_workload_fails_fast(cache_dir):
    with pytest.raises(KeyError):
        run_characterization(CharacterizationConfig(abbrevs=["NOPE"]))
