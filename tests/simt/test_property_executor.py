"""Property test: random straight-line programs vs a Python interpreter.

Hypothesis generates random arithmetic DAGs; the same program is executed on
the SIMT simulator (one value per lane) and by a direct numpy evaluation.
Any divergence-mask, writeback or operator-semantics bug shows up here.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt import Device, DType, Executor, KernelBuilder

N_LANES = 64

# (name, arity, simulator emitter name, numpy function)
_INT_OPS = [
    ("iadd", 2, lambda a, b: a + b),
    ("isub", 2, lambda a, b: a - b),
    ("imul", 2, lambda a, b: a * b),
    ("imin", 2, np.minimum),
    ("imax", 2, np.maximum),
    ("iand", 2, lambda a, b: a & b),
    ("ior", 2, lambda a, b: a | b),
    ("ixor", 2, lambda a, b: a ^ b),
    ("ineg", 1, lambda a: -a),
    ("iabs", 1, np.abs),
]


@st.composite
def programs(draw):
    """A list of ops, each consuming previously defined values by index."""
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for i in range(n_ops):
        name, arity, fn = draw(st.sampled_from(_INT_OPS))
        # Sources: either the thread-id input (index 0) or an earlier result.
        srcs = tuple(draw(st.integers(min_value=0, max_value=i)) for _ in range(arity))
        ops.append((name, srcs, fn))
    return ops


@settings(max_examples=60, deadline=None)
@given(programs(), st.integers(min_value=-100, max_value=100))
def test_random_program_matches_numpy(ops, offset):
    b = KernelBuilder("prog")
    out = b.param_buf("out", DType.I32)
    values = [b.iadd(b.global_thread_id(), offset)]
    for name, srcs, _fn in ops:
        emit = getattr(b, name)
        values.append(emit(*[values[s] for s in srcs]))
    b.st(out, b.global_thread_id(), values[-1])
    kernel = b.finalize()

    dev = Device()
    out_buf = dev.alloc("out", N_LANES, DType.I32)
    Executor(dev).launch(kernel, 2, N_LANES // 2, {"out": out_buf})

    ref = [np.arange(N_LANES, dtype=np.int64) + offset]
    for _name, srcs, fn in ops:
        ref.append(fn(*[ref[s] for s in srcs]))
    assert np.array_equal(dev.download(out_buf), ref[-1])


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=-8, max_value=8), min_size=1, max_size=6),
    st.integers(min_value=0, max_value=63),
)
def test_select_chain_matches_numpy(thresholds, pivot):
    """Chains of compare+select across lanes (predication semantics)."""
    b = KernelBuilder("selchain")
    out = b.param_buf("out", DType.I32)
    i = b.global_thread_id()
    acc = b.let_i32(0)
    for t in thresholds:
        cond = b.ilt(i, pivot + t)
        b.assign(acc, b.sel(cond, b.iadd(acc, 1), b.isub(acc, 1)))
    b.st(out, i, acc)
    dev = Device()
    out_buf = dev.alloc("out", N_LANES, DType.I32)
    Executor(dev).launch(b.finalize(), 1, N_LANES, {"out": out_buf})

    lanes = np.arange(N_LANES, dtype=np.int64)
    acc_ref = np.zeros(N_LANES, dtype=np.int64)
    for t in thresholds:
        acc_ref = np.where(lanes < pivot + t, acc_ref + 1, acc_ref - 1)
    assert np.array_equal(dev.download(out_buf), acc_ref)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=63))
def test_divergent_branch_reconverges(split):
    """After an if/else split at an arbitrary lane, all lanes continue."""
    b = KernelBuilder("reconv")
    out = b.param_buf("out", DType.I32)
    i = b.global_thread_id()
    r = b.let_i32(0)
    ife = b.if_else(b.ilt(i, split))
    with ife.then():
        b.assign(r, 10)
    with ife.otherwise():
        b.assign(r, 20)
    b.st(out, i, b.iadd(r, 1))  # post-reconvergence, all lanes execute
    dev = Device()
    out_buf = dev.alloc("out", N_LANES, DType.I32)
    Executor(dev).launch(b.finalize(), 1, N_LANES, {"out": out_buf})
    lanes = np.arange(N_LANES)
    expected = np.where(lanes < split, 11, 21)
    assert np.array_equal(dev.download(out_buf), expected)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=32))
def test_scatter_gather_roundtrip(indices):
    # max_size is the thread count: the kernel has 32 threads, so indices
    # beyond the 32nd are never read and the numpy model below (which
    # scatters all of them) would diverge from any correct execution.
    """Stores then loads through data-dependent indices behave like numpy."""
    b = KernelBuilder("scat")
    idx = b.param_buf("idx", DType.I32)
    out = b.param_buf("out", DType.I32)
    n = b.param_i32("n")
    i = b.global_thread_id()
    with b.if_(b.ilt(i, n)):
        target = b.ld(idx, i)
        b.st(out, target, i)
    dev = Device()
    idx_buf = dev.from_array("idx", np.array(indices), DType.I32)
    out_buf = dev.alloc("out", 32, DType.I32, fill=-1)
    Executor(dev).launch(
        b.finalize(), 1, 32, {"idx": idx_buf, "out": out_buf, "n": len(indices)}
    )
    expected = np.full(32, -1, dtype=np.int64)
    expected[np.array(indices)] = np.arange(len(indices))  # last write wins
    assert np.array_equal(dev.download(out_buf), expected)
