"""Disassembler and static kernel analysis."""

import pytest

from repro.simt import DType, KernelBuilder
from repro.simt.disasm import disassemble, static_stats
from repro.workloads.sdk.matrixmul import build_matrixmul_kernel
from repro.workloads.sdk.reduction import build_reduce3_kernel
from tests.conftest import build_copy_kernel


def test_disassemble_structure():
    k = build_copy_kernel()
    text = disassemble(k)
    assert text.startswith(".kernel copy")
    assert ".param buffer src" in text
    assert "ld.global" in text
    assert "st.global" in text
    assert "if {" in text


def test_disassemble_loop_and_shared():
    k = build_reduce3_kernel(128)
    text = disassemble(k)
    assert ".shared f32 sdata[128]" in text
    assert "while {" in text
    assert "bar.sync" in text


def test_disassemble_if_else():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    ife = b.if_else(b.ilt(b.tid_x, 4))
    with ife.then():
        b.st(o, 0, 1)
    with ife.otherwise():
        b.st(o, 1, 2)
    text = disassemble(b.finalize())
    assert "} else {" in text


def test_disassemble_atomic_and_return():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    b.ret_if(b.ige(b.tid_x, 8))
    b.atomic_add(o, 0, 1)
    text = disassemble(b.finalize())
    assert "atom.add" in text
    assert "ret" in text


def test_static_stats_counts():
    k = build_copy_kernel()
    stats = static_stats(k)
    assert stats.static_instructions == k.num_static_stmts
    assert stats.branches == 1
    assert stats.loops == 0
    assert stats.barriers == 0
    assert stats.category_counts["ld.global"] == 1
    assert stats.category_counts["st.global"] == 1
    assert stats.max_nesting == 1


def test_static_stats_reduction():
    k = build_reduce3_kernel(256)
    stats = static_stats(k)
    assert stats.loops == 2  # grid-stride loop + tree loop
    assert stats.barriers == 2
    assert stats.shared_bytes == 256 * 4
    assert stats.max_nesting >= 2


def test_register_pressure_scales_with_live_values():
    def pressure(n_live: int) -> int:
        b = KernelBuilder("k")
        o = b.param_buf("o")
        vals = [b.fadd(float(i), 0.0) for i in range(n_live)]
        total = vals[0]
        for v in vals[1:]:
            total = b.fadd(total, v)
        b.st(o, 0, total)
        return static_stats(b.finalize()).register_pressure

    assert pressure(16) > pressure(4) > 0


def test_register_pressure_accumulator_is_small():
    b = KernelBuilder("k")
    o = b.param_buf("o")
    acc = b.let_f32(0.0)
    for i in range(32):
        b.assign(acc, b.fadd(acc, float(i)))  # one live accumulator
    b.st(o, 0, acc)
    stats = static_stats(b.finalize())
    assert stats.register_pressure <= 4


def test_matrixmul_pressure_reasonable():
    stats = static_stats(build_matrixmul_kernel(64))
    # A tiled GEMM keeps indices + accumulator live: small two-digit range.
    assert 4 <= stats.register_pressure <= 40
