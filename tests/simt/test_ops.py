"""Per-opcode semantics: each scalar op validated against its numpy model."""

import numpy as np
import pytest

from repro.simt import Device, DType, Executor, KernelBuilder

LANES = 32


def _eval_int_binop(emit_name, a_vals, b_vals):
    b = KernelBuilder("k")
    xa = b.param_buf("a", DType.I32)
    xb = b.param_buf("b", DType.I32)
    out = b.param_buf("out", DType.I32)
    i = b.global_thread_id()
    va = b.ld(xa, i)
    vb = b.ld(xb, i)
    b.st(out, i, getattr(b, emit_name)(va, vb))
    dev = Device()
    ba = dev.from_array("a", np.asarray(a_vals), DType.I32, readonly=True)
    bb = dev.from_array("b", np.asarray(b_vals), DType.I32, readonly=True)
    bo = dev.alloc("out", LANES, DType.I32)
    Executor(dev).launch(b.finalize(), 1, LANES, {"a": ba, "b": bb, "out": bo})
    return dev.download(bo)


def _eval_fp_unop(emit_name, vals):
    b = KernelBuilder("k")
    x = b.param_buf("x")
    out = b.param_buf("out")
    i = b.global_thread_id()
    b.st(out, i, getattr(b, emit_name)(b.ld(x, i)))
    dev = Device()
    bx = dev.from_array("x", np.asarray(vals, dtype=float), readonly=True)
    bo = dev.alloc("out", LANES)
    Executor(dev).launch(b.finalize(), 1, LANES, {"x": bx, "out": bo})
    return dev.download(bo)


_RNG = np.random.default_rng(77)
_A = _RNG.integers(-1000, 1000, LANES)
_B = _RNG.integers(1, 100, LANES)  # positive: safe for div/mod/shifts


@pytest.mark.parametrize(
    "name,ref",
    [
        ("iadd", lambda a, b: a + b),
        ("isub", lambda a, b: a - b),
        ("imul", lambda a, b: a * b),
        ("imin", np.minimum),
        ("imax", np.maximum),
        ("iand", lambda a, b: a & b),
        ("ior", lambda a, b: a | b),
        ("ixor", lambda a, b: a ^ b),
    ],
)
def test_int_binops(name, ref):
    assert np.array_equal(_eval_int_binop(name, _A, _B), ref(_A, _B))


def test_idiv_truncates_toward_zero():
    got = _eval_int_binop("idiv", _A, _B)
    expected = np.fix(_A / _B).astype(np.int64)
    assert np.array_equal(got, expected)


def test_imod_matches_c_remainder():
    got = _eval_int_binop("imod", _A, _B)
    expected = _A - np.fix(_A / _B).astype(np.int64) * _B
    assert np.array_equal(got, expected)
    # C guarantees sign(remainder) == sign(dividend).
    nonzero = got != 0
    assert np.all(np.sign(got[nonzero]) == np.sign(_A[nonzero]))


def test_shifts():
    shifts = np.abs(_B) % 16
    assert np.array_equal(_eval_int_binop("ishl", _A, shifts), _A << shifts)
    assert np.array_equal(_eval_int_binop("ishr", _A, shifts), _A >> shifts)


_F = _RNG.uniform(0.1, 4.0, LANES)


@pytest.mark.parametrize(
    "name,ref",
    [
        ("fsqrt", np.sqrt),
        ("fexp", np.exp),
        ("flog", np.log),
        ("fsin", np.sin),
        ("fcos", np.cos),
        ("frcp", lambda v: 1.0 / v),
        ("ffloor", np.floor),
        ("fabs", np.abs),
        ("fneg", lambda v: -v),
    ],
)
def test_fp_unops(name, ref):
    assert np.allclose(_eval_fp_unop(name, _F), ref(_F), rtol=1e-12)


def test_fma_is_mul_add():
    b = KernelBuilder("k")
    out = b.param_buf("out")
    i = b.global_thread_id()
    f = b.i2f(i)
    b.st(out, i, b.fma(f, 2.0, 1.0))
    dev = Device()
    bo = dev.alloc("out", LANES)
    Executor(dev).launch(b.finalize(), 1, LANES, {"out": bo})
    assert np.allclose(dev.download(bo), np.arange(LANES) * 2.0 + 1.0)


def test_fpow():
    b = KernelBuilder("k")
    x = b.param_buf("x")
    out = b.param_buf("out")
    i = b.global_thread_id()
    b.st(out, i, b.fpow(b.ld(x, i), 1.5))
    dev = Device()
    bx = dev.from_array("x", _F, readonly=True)
    bo = dev.alloc("out", LANES)
    Executor(dev).launch(b.finalize(), 1, LANES, {"x": bx, "out": bo})
    assert np.allclose(dev.download(bo), _F**1.5)


@pytest.mark.parametrize(
    "name,ref",
    [
        ("ilt", lambda a, b: a < b),
        ("ile", lambda a, b: a <= b),
        ("igt", lambda a, b: a > b),
        ("ige", lambda a, b: a >= b),
        ("ieq", lambda a, b: a == b),
        ("ine", lambda a, b: a != b),
    ],
)
def test_int_comparisons_via_select(name, ref):
    b = KernelBuilder("k")
    xa = b.param_buf("a", DType.I32)
    xb = b.param_buf("b", DType.I32)
    out = b.param_buf("out", DType.I32)
    i = b.global_thread_id()
    pred = getattr(b, name)(b.ld(xa, i), b.ld(xb, i))
    b.st(out, i, b.sel(pred, 1, 0))
    dev = Device()
    small = _A % 5
    other = _B % 5
    ba = dev.from_array("a", small, DType.I32, readonly=True)
    bb = dev.from_array("b", other, DType.I32, readonly=True)
    bo = dev.alloc("out", LANES, DType.I32)
    Executor(dev).launch(b.finalize(), 1, LANES, {"a": ba, "b": bb, "out": bo})
    assert np.array_equal(dev.download(bo).astype(bool), ref(small, other))


def test_predicate_logic():
    b = KernelBuilder("k")
    out = b.param_buf("out", DType.I32)
    i = b.global_thread_id()
    p = b.ilt(i, 16)
    q = b.ieq(b.imod(i, 2), 0)
    r = b.sel(b.pand(p, q), 1, b.sel(b.por(p, q), 2, b.sel(b.pnot(p), 3, 99)))
    b.st(out, i, r)
    dev = Device()
    bo = dev.alloc("out", LANES, DType.I32)
    Executor(dev).launch(b.finalize(), 1, LANES, {"out": bo})
    lanes = np.arange(LANES)
    p_ref = lanes < 16
    q_ref = lanes % 2 == 0
    expected = np.where(p_ref & q_ref, 1, np.where(p_ref | q_ref, 2, np.where(~p_ref, 3, 99)))
    assert np.array_equal(dev.download(bo), expected)


def test_f2i_truncates():
    b = KernelBuilder("k")
    x = b.param_buf("x")
    out = b.param_buf("out", DType.I32)
    i = b.global_thread_id()
    b.st(out, i, b.f2i(b.ld(x, i)))
    vals = np.array([1.9, -1.9, 0.5, -0.5] * 8)
    dev = Device()
    bx = dev.from_array("x", vals, readonly=True)
    bo = dev.alloc("out", LANES, DType.I32)
    Executor(dev).launch(b.finalize(), 1, LANES, {"x": bx, "out": bo})
    assert np.array_equal(dev.download(bo), np.trunc(vals).astype(np.int64))


def test_ineg_iabs():
    got_neg = _eval_int_binop("iadd", -_A, np.zeros(LANES, dtype=np.int64))
    assert np.array_equal(got_neg, -_A)
    b = KernelBuilder("k")
    xa = b.param_buf("a", DType.I32)
    out = b.param_buf("out", DType.I32)
    i = b.global_thread_id()
    b.st(out, i, b.iabs(b.ineg(b.ld(xa, i))))
    dev = Device()
    ba = dev.from_array("a", _A, DType.I32, readonly=True)
    bo = dev.alloc("out", LANES, DType.I32)
    Executor(dev).launch(b.finalize(), 1, LANES, {"a": ba, "out": bo})
    assert np.array_equal(dev.download(bo), np.abs(_A))
