"""Device memory: allocation, bounds, alignment, read-only enforcement."""

import numpy as np
import pytest

from repro.simt import Device, DType, LaunchError, MemoryFault


def test_alloc_alignment_and_disjointness():
    dev = Device()
    a = dev.alloc("a", 10)
    b = dev.alloc("b", 10)
    assert a.base % 256 == 0
    assert b.base % 256 == 0
    assert b.base >= a.end


def test_upload_download_roundtrip():
    dev = Device()
    buf = dev.alloc("x", 16)
    data = np.arange(16.0)
    dev.upload(buf, data)
    assert np.array_equal(dev.download(buf), data)


def test_download_is_a_copy():
    dev = Device()
    buf = dev.from_array("x", np.arange(4.0))
    out = dev.download(buf)
    out[0] = 99
    assert dev.download(buf)[0] == 0.0


def test_from_array_infers_dtype():
    dev = Device()
    fb = dev.from_array("f", np.array([1.5, 2.5]))
    ib = dev.from_array("i", np.array([1, 2]))
    assert fb.dtype is DType.F32
    assert ib.dtype is DType.I32


def test_fill_value():
    dev = Device()
    buf = dev.alloc("x", 4, DType.I32, fill=-1)
    assert np.all(dev.download(buf) == -1)


def test_upload_size_mismatch_rejected():
    dev = Device()
    buf = dev.alloc("x", 4)
    with pytest.raises(LaunchError, match="mismatch"):
        dev.upload(buf, np.zeros(5))


def test_duplicate_name_rejected():
    dev = Device()
    dev.alloc("x", 4)
    with pytest.raises(LaunchError, match="duplicate"):
        dev.alloc("x", 4)


def test_nonpositive_size_rejected():
    dev = Device()
    with pytest.raises(LaunchError):
        dev.alloc("x", 0)


def test_gather_in_bounds():
    dev = Device()
    buf = dev.from_array("x", np.array([10.0, 20.0, 30.0]))
    addrs = np.array([buf.base, buf.base + 8, buf.base + 4])
    assert np.array_equal(dev.gather(addrs, 4), [10.0, 30.0, 20.0])


def test_gather_below_heap_faults():
    dev = Device()
    dev.alloc("x", 4)
    with pytest.raises(MemoryFault, match="below heap"):
        dev.gather(np.array([0]), 4)


def test_gather_past_end_faults():
    dev = Device()
    buf = dev.alloc("x", 4)
    with pytest.raises(MemoryFault, match="out-of-bounds"):
        dev.gather(np.array([buf.base + 4 * 4]), 4)


def test_misaligned_access_faults():
    dev = Device()
    buf = dev.alloc("x", 4)
    with pytest.raises(MemoryFault, match="misaligned"):
        dev.gather(np.array([buf.base + 2]), 4)


def test_scatter_last_lane_wins():
    dev = Device()
    buf = dev.alloc("x", 4, DType.I32)
    addrs = np.array([buf.base, buf.base, buf.base + 4])
    dev.scatter(addrs, np.array([1, 2, 3]), 4)
    out = dev.download(buf)
    assert out[0] == 2  # duplicate address: highest lane index wins
    assert out[1] == 3


def test_store_to_readonly_faults():
    dev = Device()
    buf = dev.from_array("x", np.arange(4.0), readonly=True)
    with pytest.raises(MemoryFault, match="read-only"):
        dev.scatter(np.array([buf.base]), np.array([1.0]), 4)


def test_atomic_on_readonly_faults():
    dev = Device()
    buf = dev.from_array("x", np.arange(4), readonly=True)
    with pytest.raises(MemoryFault, match="read-only"):
        dev.atomic_lane_view(np.array([buf.base]), 4)


def test_gather_spanning_two_buffers():
    dev = Device()
    a = dev.from_array("a", np.array([1.0, 2.0]))
    b = dev.from_array("b", np.array([3.0, 4.0]))
    addrs = np.array([a.base, b.base, a.base + 4, b.base + 4])
    assert np.array_equal(dev.gather(addrs, 4), [1.0, 3.0, 2.0, 4.0])


def test_buffer_lookup_by_name():
    dev = Device()
    dev.alloc("x", 4)
    assert dev.buffer("x").name == "x"
    assert len(dev.buffers) == 1


def test_access_on_empty_device_faults():
    dev = Device()
    with pytest.raises(MemoryFault):
        dev.gather(np.array([0x1000]), 4)


def test_atomic_add_duplicate_addresses_apply_in_lane_order():
    # Three lanes hit the same f32 word; ascending-lane serialisation is the
    # documented contract, and float rounding makes the order observable:
    # 0 + 1e16 -> 1e16, + 1.0 -> 1e16 (absorbed), - 1e16 -> 0.0.
    from repro.simt.ir import AtomicOp

    dev = Device()
    buf = dev.from_array("x", np.zeros(2, dtype=np.float32), DType.F32)
    addrs = np.array([buf.base, buf.base, buf.base], dtype=np.int64)
    vals = np.array([1e16, 1.0, -1e16], dtype=np.float32)
    olds = dev.atomic_update(addrs, vals, AtomicOp.ADD, 4)
    assert np.array_equal(olds, np.array([0.0, 1e16, 1e16], dtype=np.float32))
    assert dev.download(buf)[0] == 0.0


def test_atomic_add_duplicates_without_old_values():
    from repro.simt.ir import AtomicOp

    dev = Device()
    buf = dev.alloc("x", 4, DType.I32)
    addrs = np.array([buf.base, buf.base + 4, buf.base, buf.base], dtype=np.int64)
    vals = np.array([1, 10, 2, 4], dtype=np.int64)
    assert dev.atomic_update(addrs, vals, AtomicOp.ADD, 4, need_old=False) is None
    assert np.array_equal(dev.download(buf), [7, 10, 0, 0])


def test_atomic_exch_duplicate_addresses_chain_in_lane_order():
    from repro.simt.ir import AtomicOp

    dev = Device()
    buf = dev.from_array("x", np.array([5], dtype=np.int64), DType.I32)
    addrs = np.array([buf.base, buf.base, buf.base], dtype=np.int64)
    vals = np.array([7, 8, 9], dtype=np.int64)
    olds = dev.atomic_update(addrs, vals, AtomicOp.EXCH, 4)
    # Each lane observes the previous lane's exchange.
    assert np.array_equal(olds, [5, 7, 8])
    assert dev.download(buf)[0] == 9


def test_atomic_min_max_duplicates_match_serial_order():
    from repro.simt.ir import AtomicOp

    dev = Device()
    buf = dev.from_array("x", np.array([50, -50], dtype=np.int64), DType.I32)
    addrs = np.array([buf.base, buf.base, buf.base + 4, buf.base + 4], dtype=np.int64)
    olds = dev.atomic_update(
        addrs, np.array([30, 40, -10, -80], dtype=np.int64), AtomicOp.MIN, 4
    )
    assert np.array_equal(olds, [50, 30, -50, -50])
    assert np.array_equal(dev.download(buf), [30, -80])
