"""Executor semantics: control flow, divergence, loops, atomics, barriers."""

import numpy as np
import pytest

from repro.simt import (
    Device,
    DType,
    ExecutionError,
    Executor,
    KernelBuilder,
    LaunchError,
    MemoryFault,
)
from tests.conftest import build_copy_kernel, run_kernel


def _launch(kernel, grid, block, args, device=None, **kw):
    device = device or Device()
    Executor(device, **kw).launch(kernel, grid, block, args)
    return device


def test_guarded_copy():
    k = build_copy_kernel()
    dev = Device()
    h = np.arange(100.0)
    src = dev.from_array("src", h)
    dst = dev.alloc("dst", 100)
    _launch(k, 2, 64, {"src": src, "dst": dst, "n": 100}, device=dev)
    assert np.array_equal(dev.download(dst), h)


def test_if_else_both_paths():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    r = b.let_i32(0)
    ife = b.if_else(b.ilt(i, 10))
    with ife.then():
        b.assign(r, 1)
    with ife.otherwise():
        b.assign(r, 2)
    b.st(o, i, r)
    dev = Device()
    o_buf = dev.alloc("o", 64, DType.I32)
    _launch(b.finalize(), 1, 64, {"o": o_buf}, device=dev)
    out = dev.download(o_buf)
    assert np.array_equal(out[:10], np.ones(10))
    assert np.array_equal(out[10:], np.full(54, 2))


def test_nested_divergence():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    r = b.let_i32(0)
    with b.if_(b.ilt(i, 32)):
        with b.if_(b.ilt(i, 16)):
            b.assign(r, 1)
        with b.if_(b.ige(i, 16)):
            b.assign(r, 2)
    b.st(o, i, r)
    dev = Device()
    o_buf = dev.alloc("o", 64, DType.I32)
    _launch(b.finalize(), 1, 64, {"o": o_buf}, device=dev)
    out = dev.download(o_buf)
    assert np.array_equal(out, [1] * 16 + [2] * 16 + [0] * 32)


def test_data_dependent_loop_trip_counts():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    total = b.let_i32(0)
    j = b.let_i32(0)
    loop = b.while_loop()
    with loop.cond():
        loop.set_cond(b.ilt(j, i))
    with loop.body():
        b.assign(total, b.iadd(total, j))
        b.assign(j, b.iadd(j, 1))
    b.st(o, i, total)
    dev = Device()
    o_buf = dev.alloc("o", 64, DType.I32)
    _launch(b.finalize(), 1, 64, {"o": o_buf}, device=dev)
    expected = np.array([sum(range(i)) for i in range(64)])
    assert np.array_equal(dev.download(o_buf), expected)


def test_early_return_retires_lanes():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    b.st(o, i, 1)
    b.ret_if(b.ilt(i, 32))
    b.st(o, i, 2)
    dev = Device()
    o_buf = dev.alloc("o", 64, DType.I32)
    _launch(b.finalize(), 1, 64, {"o": o_buf}, device=dev)
    out = dev.download(o_buf)
    assert np.array_equal(out, [1] * 32 + [2] * 32)


def test_return_inside_loop():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    with b.for_range(0, 10) as j:
        with b.if_(b.ige(j, i)):
            b.ret()
        b.st(o, i, b.iadd(j, 1))
    dev = Device()
    o_buf = dev.alloc("o", 32, DType.I32)
    _launch(b.finalize(), 1, 32, {"o": o_buf}, device=dev)
    out = dev.download(o_buf)
    # Thread i writes values 1..min(i,10); buffer keeps the last write.
    expected = [0] + [min(i, 10) for i in range(1, 32)]
    assert np.array_equal(out, expected)


def test_grid_and_block_2d_indexing():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    x = b.global_thread_id()
    y = b.global_thread_id_y()
    width = b.imul(b.ntid_x, b.nctaid_x)
    b.st(o, b.iadd(b.imul(y, width), x), b.iadd(b.imul(y, 1000), x))
    dev = Device()
    o_buf = dev.alloc("o", 16 * 8, DType.I32)
    _launch(b.finalize(), (2, 2), (8, 4), {"o": o_buf}, device=dev)
    out = dev.download(o_buf).reshape(8, 16)
    for y in range(8):
        for x in range(16):
            assert out[y, x] == y * 1000 + x


def test_shared_memory_communication():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    s = b.shared("s", 64, DType.I32)
    tid = b.tid_x
    b.sst(s, tid, b.imul(tid, 3))
    b.barrier()
    # Read the neighbour's slot (wrapping).
    b.st(o, tid, b.sld(s, b.imod(b.iadd(tid, 1), 64)))
    dev = Device()
    o_buf = dev.alloc("o", 64, DType.I32)
    _launch(b.finalize(), 1, 64, {"o": o_buf}, device=dev)
    expected = [((t + 1) % 64) * 3 for t in range(64)]
    assert np.array_equal(dev.download(o_buf), expected)


def test_shared_memory_is_per_block():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    s = b.shared("s", 1, DType.I32)
    tid = b.tid_x
    with b.if_(b.ieq(tid, 0)):
        b.sst(s, 0, b.iadd(b.ctaid_x, 100))
    b.barrier()
    b.st(o, b.global_thread_id(), b.sld(s, 0))
    dev = Device()
    o_buf = dev.alloc("o", 64, DType.I32)
    _launch(b.finalize(), 2, 32, {"o": o_buf}, device=dev)
    out = dev.download(o_buf)
    assert np.array_equal(out, [100] * 32 + [101] * 32)


def test_atomic_add_returns_old_values():
    b = KernelBuilder("k")
    c = b.param_buf("c", DType.I32)
    olds = b.param_buf("olds", DType.I32)
    old = b.atomic_add(c, 0, 1)
    b.st(olds, b.global_thread_id(), old)
    dev = Device()
    c_buf = dev.alloc("c", 1, DType.I32)
    olds_buf = dev.alloc("olds", 64, DType.I32)
    _launch(b.finalize(), 2, 32, {"c": c_buf, "olds": olds_buf}, device=dev)
    assert dev.download(c_buf)[0] == 64
    # Old values must be a permutation of 0..63 (deterministic lane order).
    assert sorted(dev.download(olds_buf)) == list(range(64))


def test_atomic_min_max_exch_cas():
    b = KernelBuilder("k")
    buf = b.param_buf("buf", DType.I32)
    i = b.global_thread_id()
    b.atomic_min(buf, 0, i)
    b.atomic_max(buf, 1, i)
    b.atomic_exch(buf, 2, i)
    b.atomic_cas(buf, 3, 0, b.iadd(i, 1))
    dev = Device()
    v = dev.alloc("buf", 4, DType.I32)
    dev.upload(v, np.array([999, -1, -1, 0]))
    _launch(b.finalize(), 1, 32, {"buf": v}, device=dev)
    out = dev.download(v)
    assert out[0] == 0  # min over lanes
    assert out[1] == 31  # max over lanes
    assert out[2] == 31  # exch: last lane wins (serialised order)
    assert out[3] == 1  # CAS: only lane 0 succeeds against compare=0


def test_strict_barrier_divergence_raises():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    with b.if_(b.ilt(b.tid_x, 16)):
        b.barrier()
    b.st(o, b.tid_x, 1)
    k = b.finalize()
    dev = Device()
    o_buf = dev.alloc("o", 32, DType.I32)
    with pytest.raises(ExecutionError, match="divergent barrier"):
        _launch(k, 1, 32, {"o": o_buf}, device=dev)


def test_relaxed_barrier_allows_divergence():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    with b.if_(b.ilt(b.tid_x, 16)):
        b.barrier()
    b.st(o, b.tid_x, 1)
    dev = Device()
    o_buf = dev.alloc("o", 32, DType.I32)
    _launch(b.finalize(), 1, 32, {"o": o_buf}, device=dev, strict_barriers=False)


def test_barrier_after_returns_is_legal():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    b.ret_if(b.ige(b.tid_x, 16))
    b.barrier()
    b.st(o, b.tid_x, 1)
    dev = Device()
    o_buf = dev.alloc("o", 32, DType.I32)
    _launch(b.finalize(), 1, 32, {"o": o_buf}, device=dev)
    assert dev.download(o_buf).sum() == 16


def test_integer_division_by_zero_raises():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    b.st(o, 0, b.idiv(1, b.isub(b.tid_x, b.tid_x)))
    dev = Device()
    o_buf = dev.alloc("o", 1, DType.I32)
    with pytest.raises(ExecutionError, match="division by zero"):
        _launch(b.finalize(), 1, 32, {"o": o_buf}, device=dev)


def test_inactive_lane_division_by_zero_is_fine():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    with b.if_(b.igt(i, 0)):
        b.st(o, i, b.idiv(100, i))
    dev = Device()
    o_buf = dev.alloc("o", 32, DType.I32)
    _launch(b.finalize(), 1, 32, {"o": o_buf}, device=dev)
    assert dev.download(o_buf)[4] == 25


def test_missing_argument_rejected():
    k = build_copy_kernel()
    dev = Device()
    src = dev.alloc("src", 4)
    with pytest.raises(LaunchError, match="missing argument"):
        Executor(dev).launch(k, 1, 32, {"src": src})


def test_unknown_argument_rejected():
    k = build_copy_kernel()
    dev = Device()
    src = dev.alloc("src", 64)
    dst = dev.alloc("dst", 64)
    with pytest.raises(LaunchError, match="unknown arguments"):
        Executor(dev).launch(k, 1, 32, {"src": src, "dst": dst, "n": 64, "extra": 1})


def test_scalar_for_buffer_param_rejected():
    k = build_copy_kernel()
    dev = Device()
    dst = dev.alloc("dst", 64)
    with pytest.raises(LaunchError, match="DeviceBuffer"):
        Executor(dev).launch(k, 1, 32, {"src": 5, "dst": dst, "n": 64})


def test_buffer_for_scalar_param_rejected():
    k = build_copy_kernel()
    dev = Device()
    src = dev.alloc("src", 64)
    dst = dev.alloc("dst", 64)
    with pytest.raises(LaunchError, match="scalar"):
        Executor(dev).launch(k, 1, 32, {"src": src, "dst": dst, "n": src})


def test_oversized_block_rejected():
    k = build_copy_kernel()
    with pytest.raises(LaunchError, match="1024"):
        Executor(Device()).launch(k, 1, 2048, {})


def test_out_of_bounds_access_faults():
    k = build_copy_kernel()
    dev = Device()
    src = dev.from_array("src", np.arange(16.0))
    dst = dev.alloc("dst", 16)
    with pytest.raises(MemoryFault):
        Executor(dev).launch(k, 1, 32, {"src": src, "dst": dst, "n": 32})


def test_shared_out_of_bounds_faults():
    b = KernelBuilder("k")
    o = b.param_buf("o")
    s = b.shared("s", 8)
    b.sst(s, b.tid_x, 1.0)  # tids 8..31 out of range
    b.st(o, 0, b.sld(s, 0))
    dev = Device()
    o_buf = dev.alloc("o", 1)
    with pytest.raises(ExecutionError, match="out of bounds"):
        _launch(b.finalize(), 1, 32, {"o": o_buf}, device=dev)


def test_read_before_write_register_raises():
    from repro.simt.ir import Instr, Op, Reg

    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    ghost = Reg("ghost", DType.I32)
    b._emit(Instr(Op.MOV, DType.I32, b._new_reg(DType.I32), (ghost,)))
    b.st(o, 0, 1)
    dev = Device()
    o_buf = dev.alloc("o", 1, DType.I32)
    with pytest.raises(ExecutionError, match="read"):
        _launch(b.finalize(), 1, 32, {"o": o_buf}, device=dev)


def test_select_and_conversions():
    b = KernelBuilder("k")
    o = b.param_buf("o")
    i = b.global_thread_id()
    f = b.i2f(i)
    r = b.sel(b.flt(f, 4.0), b.fmul(f, 10.0), b.fneg(f))
    b.st(o, i, r)
    dev = Device()
    o_buf = dev.alloc("o", 8)
    _launch(b.finalize(), 1, 8, {"o": o_buf}, device=dev)
    expected = [0.0, 10.0, 20.0, 30.0, -4.0, -5.0, -6.0, -7.0]
    assert np.allclose(dev.download(o_buf), expected)


def test_truncating_int_division_matches_c():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    v = b.isub(i, 4)  # -4..3
    b.st(o, i, b.idiv(v, 3))
    dev = Device()
    o_buf = dev.alloc("o", 8, DType.I32)
    _launch(b.finalize(), 1, 8, {"o": o_buf}, device=dev)
    # C semantics: trunc toward zero.
    expected = [int(v / 3) if v >= 0 else -((-v) // 3) for v in range(-4, 4)]
    assert np.array_equal(dev.download(o_buf), expected)


def test_uniform_scalar_address_load():
    b = KernelBuilder("k")
    src = b.param_buf("src")
    dst = b.param_buf("dst")
    b.st(dst, b.global_thread_id(), b.ld(src, 0))
    dev = Device()
    s = dev.from_array("src", np.array([42.0]))
    d = dev.alloc("dst", 32)
    _launch(b.finalize(), 1, 32, {"src": s, "dst": d}, device=dev)
    assert np.all(dev.download(d) == 42.0)


def test_for_range_negative_step():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    acc = b.let_i32(0)
    with b.for_range(5, 0, step=-1) as j:
        b.assign(acc, b.iadd(acc, j))
    b.st(o, b.tid_x, acc)
    dev = Device()
    o_buf = dev.alloc("o", 32, DType.I32)
    _launch(b.finalize(), 1, 32, {"o": o_buf}, device=dev)
    assert dev.download(o_buf)[0] == 5 + 4 + 3 + 2 + 1


def test_non_multiple_of_warp_block():
    k = build_copy_kernel()
    dev = Device()
    h = np.arange(48.0)
    src = dev.from_array("src", h)
    dst = dev.alloc("dst", 48)
    _launch(k, 1, 48, {"src": src, "dst": dst, "n": 48}, device=dev)
    assert np.array_equal(dev.download(dst), h)


# ---------------------------------------------------------------------------
# Block launch-order permutation (used by the verify properties)


def _ctaid_writer():
    """Each block writes its own ctaid.x into its slot of ``o``."""
    b = KernelBuilder("who")
    o = b.param_buf("o", DType.I32)
    with b.if_(b.ieq(b.tid_x, 0)):
        b.st(o, b.ctaid_x, b.ctaid_x)
    return b.finalize()


def test_block_order_preserves_block_identity():
    k = _ctaid_writer()
    dev = Device()
    o = dev.alloc("o", 6, DType.I32)
    ex = Executor(dev, engine="interpreted", block_order=[5, 4, 3, 2, 1, 0])
    ex.launch(k, 6, 32, {"o": o})
    # Visiting blocks in reverse must not change which ctaid each block sees.
    assert dev.download(o).tolist() == [0, 1, 2, 3, 4, 5]


def test_block_order_must_be_a_permutation():
    k = _ctaid_writer()
    dev = Device()
    o = dev.alloc("o", 4, DType.I32)
    with pytest.raises(LaunchError, match="permutation"):
        Executor(dev, engine="interpreted", block_order=[0, 1, 2]).launch(
            k, 4, 32, {"o": o}
        )
    with pytest.raises(LaunchError, match="permutation"):
        Executor(dev, engine="interpreted", block_order=[0, 1, 2, 2]).launch(
            k, 4, 32, {"o": o}
        )


def test_block_order_rejected_on_non_interpreted_engines():
    with pytest.raises(LaunchError, match="interpreted"):
        Executor(Device(), engine="compiled", block_order=[0])
    with pytest.raises(LaunchError, match="interpreted"):
        Executor(Device(), block_order=[0])  # default engine is compiled
