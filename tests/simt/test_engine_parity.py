"""Engine parity: the compiled/batched engine vs the reference interpreter.

The compiled engine's contract is *bit-for-bit* equivalence: for every
workload, both engines must leave identical bytes in every device buffer
and emit identical serialized profiles.  Sampling is enabled so the
compiled engine actually exercises block batching (silent blocks stack into
wide multi-block launches) alongside observed single-block runs.
"""

import numpy as np
import pytest

from repro.simt import Device, DType, ExecutionError, Executor, KernelBuilder
from repro.simt.executor import profile_all_blocks, stride_sampler
from repro.trace.collector import KernelTraceCollector
from repro.trace.profile import WorkloadProfile
from repro.trace.serialize import workload_to_dict
from repro.workloads import registry
from repro.workloads.base import RunContext

#: Small sample cap: observed blocks stay cheap while leaving plenty of
#: silent blocks for the compiled engine to batch.
SAMPLE_BLOCKS = 8


def _run_engine(cls, engine):
    device = Device()
    collector = KernelTraceCollector()
    executor = Executor(
        device,
        sinks=[collector],
        profile_filter=stride_sampler(SAMPLE_BLOCKS),
        engine=engine,
    )
    ctx = RunContext(device, executor, seed=1234)
    wl = cls()
    wl.run(ctx)
    buffers = {b.name: device.download(b) for b in device.buffers}
    profile = WorkloadProfile(workload=wl.abbrev, suite=wl.suite, kernels=collector.profiles)
    return buffers, workload_to_dict(profile)


@pytest.mark.parametrize("abbrev", registry.abbrevs())
def test_workload_parity(abbrev):
    cls = registry.get(abbrev)
    ibufs, iprof = _run_engine(cls, "interpreted")
    cbufs, cprof = _run_engine(cls, "compiled")
    assert sorted(ibufs) == sorted(cbufs)
    for name, iarr in ibufs.items():
        carr = cbufs[name]
        assert iarr.dtype == carr.dtype, f"buffer {name!r} dtype differs"
        # tobytes() is an exact bitwise comparison (NaNs included).
        assert iarr.tobytes() == carr.tobytes(), f"buffer {name!r} differs"
    assert iprof == cprof


# ---------------------------------------------------------------------------
# batch_blocks edge sweep on a small workload basket

#: Tiny scales: fast enough to sweep, large enough for multi-block grids.
SWEEP_BASKET = (
    ("VA", {"n": 1 << 12}),
    ("BS", {"n": 1 << 10}),
    ("NN", {"n": 1 << 10}),
)

#: Forced batch widths: no batching at all, an odd prime (so batches
#: misalign with every power-of-two grid), and far beyond any grid size
#: (the whole silent tail lands in one batch).
SWEEP_BATCH_BLOCKS = (1, 7, 1 << 20)


def _run_scaled(abbrev, scale, engine, batch_blocks=None):
    from repro.workloads.runner import run_workload

    profile = run_workload(
        registry.get(abbrev)(**scale),
        verify=False,
        sample_blocks=SAMPLE_BLOCKS,
        engine=engine,
        batch_blocks=batch_blocks,
    )
    return workload_to_dict(profile)


@pytest.mark.parametrize("abbrev,scale", SWEEP_BASKET, ids=[a for a, _ in SWEEP_BASKET])
def test_batch_blocks_edge_sweep(abbrev, scale):
    # Every forced batch width must reproduce the interpreter's profile
    # bit-for-bit (memory parity over the full registry is covered by
    # test_workload_parity; profiles pin the observe path per batch shape).
    baseline = _run_scaled(abbrev, scale, "interpreted")
    for bb in SWEEP_BATCH_BLOCKS:
        swept = _run_scaled(abbrev, scale, "compiled", batch_blocks=bb)
        assert swept == baseline, f"profile diverged at batch_blocks={bb}"


# ---------------------------------------------------------------------------
# Batching semantics on hand-built kernels


def _run_both(build, grid, block, nbufs, counts, dtypes=None):
    """Run a built kernel under both engines (no sinks: everything batches).

    ``build`` receives a KernelBuilder plus the buffer params it declares;
    returns per-engine downloaded buffers.
    """
    outs = {}
    for engine in ("interpreted", "compiled"):
        b = KernelBuilder("k")
        bufs = [
            b.param_buf(f"o{i}", (dtypes or [DType.I32] * nbufs)[i]) for i in range(nbufs)
        ]
        build(b, *bufs)
        dev = Device()
        dbufs = {
            f"o{i}": dev.alloc(f"o{i}", counts[i], (dtypes or [DType.I32] * nbufs)[i])
            for i in range(nbufs)
        }
        Executor(dev, engine=engine).launch(b.finalize(), grid, block, dbufs)
        outs[engine] = {n: dev.download(d) for n, d in dbufs.items()}
    return outs


def test_batched_barrier_with_per_block_trip_counts():
    # The lavaMD shape: a barrier inside a loop whose trip count depends on
    # ctaid, so batched blocks reach the barrier on different iterations.
    # Per-block barrier semantics must allow that (each block only waits on
    # its own lanes) while producing identical results to the interpreter.
    def build(b, o):
        s = b.shared("s", 32, DType.I32)
        tid = b.tid_x
        acc = b.let_i32(0)
        j = b.let_i32(0)
        trips = b.iadd(b.ctaid_x, 1)
        loop = b.while_loop()
        with loop.cond():
            loop.set_cond(b.ilt(j, trips))
        with loop.body():
            b.sst(s, tid, b.iadd(b.imul(tid, 10), j))
            b.barrier()
            b.assign(acc, b.iadd(acc, b.sld(s, b.imod(b.iadd(tid, 1), 32))))
            b.barrier()
            b.assign(j, b.iadd(j, 1))
        b.st(o, b.global_thread_id(), acc)

    outs = _run_both(build, 6, 32, 1, [6 * 32])
    assert np.array_equal(outs["interpreted"]["o0"], outs["compiled"]["o0"])


def test_batched_early_return_per_block():
    # Data-dependent early return: each block retires a different lane
    # subset, so the batch's live mask is ragged across blocks.
    def build(b, o):
        i = b.global_thread_id()
        b.st(o, i, -1)
        b.ret_if(b.ige(b.tid_x, b.imul(b.iadd(b.ctaid_x, 1), 8)))
        b.st(o, i, b.tid_x)

    outs = _run_both(build, 4, 64, 1, [4 * 64])
    assert np.array_equal(outs["interpreted"]["o0"], outs["compiled"]["o0"])
    expected = np.concatenate(
        [np.where(np.arange(64) < (c + 1) * 8, np.arange(64), -1) for c in range(4)]
    )
    assert np.array_equal(outs["compiled"]["o0"], expected)


def test_divergent_barrier_still_detected_under_batching():
    def build(b, o):
        with b.if_(b.ilt(b.tid_x, 16)):
            b.barrier()
        b.st(o, b.global_thread_id(), 1)

    for engine in ("interpreted", "compiled"):
        b = KernelBuilder("k")
        o = b.param_buf("o", DType.I32)
        build(b, o)
        dev = Device()
        obuf = dev.alloc("o", 128, DType.I32)
        with pytest.raises(ExecutionError, match="divergent barrier"):
            Executor(dev, engine=engine).launch(b.finalize(), 4, 32, {"o": obuf})


def _store_only_kernel():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    b.st(o, b.global_thread_id(), b.ctaid_x)
    return b.finalize()


def test_columnar_mode_batches_profiled_blocks():
    # Columnar event mode (the default) batches profiled blocks alongside
    # silent ones and delivers events per batch.
    k = _store_only_kernel()
    dev = Device()
    obuf = dev.alloc("o", 8 * 32, DType.I32)
    ex = Executor(
        dev,
        sinks=[KernelTraceCollector()],
        profile_filter=stride_sampler(2),
        engine="compiled",
    )
    ex.launch(k, 8, 32, {"o": obuf})
    stats = ex.last_launch_stats
    assert stats["engine"] == "compiled"
    assert stats["event_mode"] == "columnar"
    assert stats["profiled_blocks"] == 2
    assert stats["batched_blocks"] == stats["blocks"] == 8
    assert stats["largest_batch"] > 1
    assert stats["observed_batches"] >= 1
    assert stats["event_counts"]["instr"] > 0
    assert stats["event_bytes"] > 0

    # With every block profiled, every batch is an observed batch.
    dev = Device()
    obuf = dev.alloc("o", 8 * 32, DType.I32)
    ex = Executor(
        dev,
        sinks=[KernelTraceCollector()],
        profile_filter=profile_all_blocks,
        engine="compiled",
    )
    ex.launch(k, 8, 32, {"o": obuf})
    stats = ex.last_launch_stats
    assert stats["profiled_blocks"] == 8
    assert stats["observed_batches"] == stats["batches"]
    assert stats["largest_batch"] > 1


def test_callback_mode_never_batches_profiled_blocks():
    # The legacy callback event mode keeps profiled blocks out of batches.
    k = _store_only_kernel()
    dev = Device()
    obuf = dev.alloc("o", 8 * 32, DType.I32)
    ex = Executor(
        dev,
        sinks=[KernelTraceCollector()],
        profile_filter=stride_sampler(2),
        engine="compiled",
        event_mode="callback",
    )
    ex.launch(k, 8, 32, {"o": obuf})
    stats = ex.last_launch_stats
    assert stats["event_mode"] == "callback"
    assert stats["profiled_blocks"] == 2
    assert stats["batched_blocks"] == 6
    assert stats["profiled_blocks"] + stats["batched_blocks"] == stats["blocks"]
    assert stats["largest_batch"] > 1


def test_load_store_overlap_planning_tiers():
    # A per-lane RMW (``o[gid] += 1``) is hazard-flagged by the buffer
    # dataflow, but the footprint analysis proves every block touches a
    # private address range: the launch batches at full width and device
    # memory stays bit-identical to the interpreter.
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    b.st(o, i, b.iadd(b.ld(o, i), 1))
    k = b.finalize()

    init = np.arange(8 * 32, dtype=np.int32)
    results = {}
    for engine in ("interpreted", "compiled"):
        dev = Device()
        obuf = dev.alloc("o", 8 * 32, DType.I32)
        dev.upload(obuf, init)
        ex = Executor(
            dev,
            sinks=[KernelTraceCollector()],
            profile_filter=stride_sampler(2),
            engine=engine,
        )
        ex.launch(k, 8, 32, {"o": obuf})
        results[engine] = dev.download(obuf)
        stats = ex.last_launch_stats
    assert np.array_equal(results["interpreted"], results["compiled"])
    assert stats["hazard_tier"] == "symbolic_clear"
    assert stats["observed_batch_limit"] > 1
    assert stats["largest_batch"] > 1
    # A shifted read of the same buffer (``o[gid] = o[gid + 1] + 1``) makes
    # every block's reads overlap its neighbour's writes: no grouping is
    # possible and the launch pins to one block per batch.
    b = KernelBuilder("kshift")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    b.st(o, i, b.iadd(b.ld(o, b.iadd(i, 1)), 1))
    kshift = b.finalize()
    dev = Device()
    obuf = dev.alloc("o", 8 * 32 + 1, DType.I32)
    ex = Executor(
        dev,
        sinks=[KernelTraceCollector()],
        profile_filter=stride_sampler(2),
        engine="compiled",
    )
    ex.launch(kshift, 8, 32, {"o": obuf})
    stats = ex.last_launch_stats
    assert stats["hazard_tier"] == "pinned"
    assert stats["pin_reason"] == "footprint-overlap"
    assert stats["observed_batch_limit"] == 1
    assert stats["largest_batch"] == 1
    # An indirect store address (loaded from memory) is opaque to the
    # affine analysis, so the launch pins outright.
    b = KernelBuilder("kind")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    b.st(o, b.ld(o, i), 1)
    kind = b.finalize()
    dev = Device()
    obuf = dev.alloc("o", 8 * 32, DType.I32)
    ex = Executor(dev, engine="compiled")
    ex.launch(kind, 8, 32, {"o": obuf})
    stats = ex.last_launch_stats
    assert stats["hazard_tier"] == "pinned"
    assert stats["pin_reason"] == "opaque-address"
    assert stats["batch_limit"] == 1
    # Disjoint load/store buffers never flag a hazard in the first place.
    b = KernelBuilder("k2")
    src = b.param_buf("src", DType.I32)
    dst = b.param_buf("dst", DType.I32)
    i = b.global_thread_id()
    b.st(dst, i, b.ld(src, i))
    k2 = b.finalize()
    dev = Device()
    sbuf = dev.alloc("src", 8 * 32, DType.I32)
    dbuf = dev.alloc("dst", 8 * 32, DType.I32)
    ex = Executor(
        dev,
        sinks=[KernelTraceCollector()],
        profile_filter=stride_sampler(2),
        engine="compiled",
    )
    ex.launch(k2, 8, 32, {"src": sbuf, "dst": dbuf})
    assert ex.last_launch_stats["hazard_tier"] == "clear"
    assert ex.last_launch_stats["observed_batch_limit"] > 1
    # Binding one buffer to both params aliases them; the footprint pass
    # still proves the copy per-lane private, so it batches anyway.
    dev = Device()
    buf = dev.alloc("b", 8 * 32, DType.I32)
    ex = Executor(
        dev,
        sinks=[KernelTraceCollector()],
        profile_filter=stride_sampler(2),
        engine="compiled",
    )
    ex.launch(k2, 8, 32, {"src": buf, "dst": buf})
    assert ex.last_launch_stats["hazard_tier"] == "symbolic_clear"
    assert ex.last_launch_stats["observed_batch_limit"] > 1


def test_atomic_kernels_pin_batches_to_one_block():
    # Cross-block atomics would race inside a batch, so kernels containing
    # atomics must execute one block at a time even when unprofiled.
    b = KernelBuilder("k")
    c = b.param_buf("c", DType.I32)
    b.atomic_add(c, 0, 1)
    k = b.finalize()

    dev = Device()
    cbuf = dev.alloc("c", 1, DType.I32)
    ex = Executor(dev, engine="compiled")
    ex.launch(k, 8, 32, {"c": cbuf})
    stats = ex.last_launch_stats
    assert stats["batch_limit"] == 1
    assert stats["largest_batch"] <= 1
    assert dev.download(cbuf)[0] == 8 * 32
