"""Differential testing: lockstep executor vs the lane-at-a-time reference.

Hypothesis builds random *structured programs* — arithmetic, nested
conditionals, data-dependent loops, early returns — with per-lane-disjoint
memory effects, runs them on both engines, and requires identical global
memory afterwards.  This is the strongest evidence that divergence masks,
loop retirement and return handling implement the IR semantics faithfully.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt import Device, DType, Executor, KernelBuilder
from repro.simt.reference import run_reference

LANES = 64

# Program AST: nested tuples built by hypothesis.
#   ("op", name, src_a, src_b)        arithmetic on value indices
#   ("if", cond_spec, then_prog, else_prog)
#   ("loop", bound_mod, body_prog)    while v < (i % bound_mod): ...
#   ("ret", threshold)                return if value > threshold


@st.composite
def programs(draw, depth=0):
    n_stmts = draw(st.integers(1, 4 if depth == 0 else 2))
    stmts = []
    for _ in range(n_stmts):
        choices = ["op", "op", "op"]
        if depth < 2:
            choices += ["if", "loop"]
        if depth > 0:
            choices.append("ret")
        kind = draw(st.sampled_from(choices))
        if kind == "op":
            stmts.append(
                (
                    "op",
                    draw(st.sampled_from(["iadd", "isub", "imul", "imin", "imax", "ixor"])),
                    draw(st.integers(-5, 5)),
                )
            )
        elif kind == "if":
            stmts.append(
                (
                    "if",
                    draw(st.integers(-10, 10)),
                    draw(programs(depth=depth + 1)),  # type: ignore[call-arg]
                    draw(programs(depth=depth + 1)),  # type: ignore[call-arg]
                )
            )
        elif kind == "loop":
            stmts.append(("loop", draw(st.integers(1, 6)), draw(programs(depth=depth + 1))))  # type: ignore[call-arg]
        else:
            stmts.append(("ret", draw(st.integers(-20, 20))))
    return stmts


def _emit(b, stmts, acc, i):
    """Emit the AST; returns the (possibly reassigned) accumulator register."""
    for stmt in stmts:
        if stmt[0] == "op":
            _tag, opname, imm = stmt
            b.assign(acc, getattr(b, opname)(acc, imm))
        elif stmt[0] == "if":
            _tag, threshold, then_prog, else_prog = stmt
            ife = b.if_else(b.ilt(b.imod(acc, 13), threshold))
            with ife.then():
                _emit(b, then_prog, acc, i)
            with ife.otherwise():
                _emit(b, else_prog, acc, i)
        elif stmt[0] == "loop":
            _tag, bound_mod, body = stmt
            j = b.let_i32(0)
            bound = b.imod(i, bound_mod)
            loop = b.while_loop()
            with loop.cond():
                loop.set_cond(b.ilt(j, bound))
            with loop.body():
                _emit(b, body, acc, i)
                b.assign(j, b.iadd(j, 1))
        elif stmt[0] == "ret":
            _tag, threshold = stmt
            b.ret_if(b.igt(b.imod(acc, 17), threshold))


def _build_kernel(prog):
    b = KernelBuilder("diff")
    out = b.param_buf("out", DType.I32)
    i = b.global_thread_id()
    acc = b.let_i32(i)
    _emit(b, prog, acc, i)
    b.st(out, i, acc)
    return b.finalize()


def _run_both(prog):
    kernel = _build_kernel(prog)
    results = []
    for engine in ("lockstep", "reference"):
        dev = Device()
        out = dev.alloc("out", LANES, DType.I32, fill=-999)
        if engine == "lockstep":
            Executor(dev).launch(kernel, 2, LANES // 2, {"out": out})
        else:
            run_reference(kernel, 2, LANES // 2, {"out": out}, dev)
        results.append(dev.download(out))
    return results


@settings(max_examples=120, deadline=None)
@given(programs())
def test_lockstep_matches_reference(prog):
    lockstep, reference = _run_both(prog)
    assert np.array_equal(lockstep, reference)


def test_reference_handles_shared_memory_single_lane_patterns():
    """Sanity: the reference engine runs a per-lane shared scratch kernel."""
    b = KernelBuilder("shref")
    out = b.param_buf("out", DType.I32)
    s = b.shared("s", 32, DType.I32)
    tid = b.tid_x
    b.sst(s, tid, b.imul(tid, 5))
    b.st(out, tid, b.sld(s, tid))
    kernel = b.finalize()
    dev = Device()
    out_b = dev.alloc("out", 32, DType.I32)
    run_reference(kernel, 1, 32, {"out": out_b}, dev)
    assert np.array_equal(dev.download(out_b), np.arange(32) * 5)


def test_reference_atomics_single_lane():
    b = KernelBuilder("atref")
    c = b.param_buf("c", DType.I32)
    b.atomic_add(c, 0, 1)
    kernel = b.finalize()
    dev = Device()
    cb = dev.alloc("c", 1, DType.I32)
    run_reference(kernel, 1, 32, {"c": cb}, dev)
    assert dev.download(cb)[0] == 32


def test_known_tricky_program():
    """Regression anchor: nested loop + return + else-branch arithmetic."""
    prog = [
        ("loop", 5, [("op", "iadd", 3), ("if", 2, [("ret", 5)], [("op", "ixor", 4)])]),
        ("op", "imul", -2),
    ]
    lockstep, reference = _run_both(prog)
    assert np.array_equal(lockstep, reference)
