"""Texture memory space: builder rules, execution, and collection."""

import numpy as np
import pytest

from repro.simt import BuildError, Device, DType, KernelBuilder, MemSpace
from tests.conftest import run_kernel


def _tex_gather_kernel():
    b = KernelBuilder("texgather")
    tex = b.param_buf("tex", space=MemSpace.TEXTURE)
    idx = b.param_buf("idx", DType.I32)
    out = b.param_buf("out")
    i = b.global_thread_id()
    b.st(out, i, b.ld(tex, b.ld(idx, i)))
    return b.finalize()


def _run_tex_gather():
    dev = Device()
    data = np.arange(100.0) * 2
    rng = np.random.default_rng(0)
    indices = rng.integers(0, 100, 64)
    tex = dev.from_array("tex", data, readonly=True)
    idx = dev.from_array("idx", indices, DType.I32, readonly=True)
    out = dev.alloc("out", 64)
    _, profile = run_kernel(
        _tex_gather_kernel(), 2, 32, {"tex": tex, "idx": idx, "out": out}, device=dev
    )
    return dev, out, data, indices, profile


def test_texture_fetch_values():
    dev, out, data, indices, _profile = _run_tex_gather()
    assert np.array_equal(dev.download(out), data[indices])


def test_texture_instruction_category():
    profile = _run_tex_gather()[-1]
    assert profile.thread_instrs["ld.tex"] == 64
    # The texture fetch is not charged to the global-load category.
    assert profile.thread_instrs["ld.global"] == 64  # only the idx loads


def test_texture_not_in_coalescing_stats():
    profile = _run_tex_gather()[-1]
    # Global accesses: idx load + out store per warp = 4 accesses.
    assert profile.gmem.accesses == 4


def test_texture_stats_collected():
    profile = _run_tex_gather()[-1]
    t = profile.texture
    assert t.accesses == 2  # one fetch per warp
    assert t.lane_accesses == 64
    assert t.line_accesses > 0
    assert 0 < t.unique_lines <= t.line_accesses


def test_texture_reuse_tracked():
    b = KernelBuilder("texreuse")
    tex = b.param_buf("tex", space=MemSpace.TEXTURE)
    out = b.param_buf("out")
    i = b.global_thread_id()
    v = b.fadd(b.ld(tex, i), b.ld(tex, i))  # immediate line re-touch
    b.st(out, i, v)
    dev = Device()
    tex_b = dev.from_array("tex", np.arange(64.0), readonly=True)
    out_b = dev.alloc("out", 64)
    _, p = run_kernel(b.finalize(), 2, 32, {"tex": tex_b, "out": out_b}, device=dev)
    assert p.texture.reuse_cdf_at(16) == 1.0
    assert p.texture.unique_line_ratio < 1.0


def test_store_to_texture_rejected():
    b = KernelBuilder("k")
    tex = b.param_buf("tex", space=MemSpace.TEXTURE)
    with pytest.raises(BuildError, match="read-only"):
        b.st(tex, 0, 1.0)


def test_atomic_on_texture_rejected():
    b = KernelBuilder("k")
    tex = b.param_buf("tex", DType.I32, space=MemSpace.TEXTURE)
    with pytest.raises(BuildError):
        b.atomic_add(tex, 0, 1)


def test_texture_metrics_registered():
    from repro.core import metrics

    assert "mix.texture" in metrics.metric_names()
    assert "tex.rd64" in metrics.metric_names()
    assert "tex.unique_ratio" in metrics.metric_names()


def test_texture_traffic_in_uarch_model():
    from repro.trace.profile import KernelProfile, TextureStats
    from repro.uarch import BASELINE, time_kernel

    hist = np.zeros(64, dtype=np.int64)
    base = KernelProfile(
        kernel_name="t",
        grid=(16, 1),
        block=(128, 1),
        total_blocks=16,
        profiled_blocks=16,
        threads_total=2048,
        thread_instrs={"ld.tex": 100_000},
        warp_instrs={"ld.tex": 4_000},
        texture=TextureStats(
            accesses=4_000,
            lane_accesses=100_000,
            reuse_histogram=hist,
            cold_misses=50_000,
            line_accesses=50_000,
            unique_lines=50_000,
        ),
    )
    with_tex_cache = time_kernel(base, BASELINE)
    no_tex_cache = time_kernel(base, BASELINE.derive("notex", tex_cache_lines=0))
    # All fetches are cold here, so the texture cache cannot help...
    assert with_tex_cache.dram_transactions == no_tex_cache.dram_transactions
    # ...but cache-resident reuse does.
    hist2 = hist.copy()
    hist2[3] = 40_000
    reusing = KernelProfile(
        **{
            **base.__dict__,
            "texture": TextureStats(
                accesses=4_000,
                lane_accesses=100_000,
                reuse_histogram=hist2,
                cold_misses=10_000,
                line_accesses=50_000,
                unique_lines=10_000,
            ),
        }
    )
    assert time_kernel(reusing, BASELINE).dram_transactions < with_tex_cache.dram_transactions
