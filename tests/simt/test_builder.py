"""Builder DSL: IR construction, validation and misuse errors."""

import pytest

from repro.simt import BuildError, DType, KernelBuilder, MemSpace
from repro.simt.ir import If, Instr, Load, Op, Store, While


def test_simple_kernel_structure():
    b = KernelBuilder("k")
    x = b.param_buf("x")
    n = b.param_i32("n")
    i = b.global_thread_id()
    with b.if_(b.ilt(i, n)):
        b.st(x, i, b.fadd(b.ld(x, i), 1.0))
    k = b.finalize()
    assert k.name == "k"
    assert len(k.params) == 2
    ifs = [s for s in k.walk() if isinstance(s, If)]
    assert len(ifs) == 1
    assert any(isinstance(s, Store) for s in k.walk())


def test_sids_unique_and_dense():
    b = KernelBuilder("k")
    x = b.param_buf("x")
    with b.for_range(0, 4) as i:
        b.st(x, i, 1.0)
    k = b.finalize()
    sids = [s.sid for s in k.walk()]
    assert sorted(sids) == list(range(len(sids)))


def test_finalize_idempotent():
    b = KernelBuilder("k")
    b.iadd(1, 2)
    assert b.finalize() is b.finalize()


def test_emit_after_finalize_rejected():
    b = KernelBuilder("k")
    b.finalize()
    with pytest.raises(BuildError):
        b.iadd(1, 2)


def test_duplicate_param_rejected():
    b = KernelBuilder("k")
    b.param_i32("n")
    with pytest.raises(BuildError, match="duplicate"):
        b.param_f32("n")


def test_duplicate_shared_rejected():
    b = KernelBuilder("k")
    b.shared("s", 16)
    with pytest.raises(BuildError, match="duplicate"):
        b.shared("s", 16)


def test_shared_offsets_are_disjoint():
    b = KernelBuilder("k")
    s1 = b.shared("a", 16, DType.F32)
    s2 = b.shared("b", 8, DType.I32)
    assert s1.decl.offset == 0
    assert s2.decl.offset == 16 * 4
    k = b.finalize()
    assert k.shared_bytes == 16 * 4 + 8 * 4


def test_nonpositive_shared_rejected():
    b = KernelBuilder("k")
    with pytest.raises(BuildError):
        b.shared("s", 0)


def test_branch_condition_must_be_predicate():
    b = KernelBuilder("k")
    r = b.iadd(1, 2)
    with pytest.raises(BuildError, match="predicate"):
        with b.if_(r):
            pass


def test_while_without_cond_rejected_at_finalize():
    b = KernelBuilder("k")
    loop = b.while_loop()
    with loop.cond():
        b.ilt(1, 2)  # computed but never set
    with loop.body():
        pass
    with pytest.raises(BuildError, match="no condition"):
        b.finalize()


def test_while_body_before_cond_rejected():
    b = KernelBuilder("k")
    loop = b.while_loop()
    with pytest.raises(BuildError):
        with loop.body():
            pass


def test_if_else_otherwise_before_then_rejected():
    b = KernelBuilder("k")
    ife = b.if_else(b.ilt(1, 2))
    with pytest.raises(BuildError):
        with ife.otherwise():
            pass


def test_for_range_zero_step_rejected():
    b = KernelBuilder("k")
    with pytest.raises(BuildError):
        with b.for_range(0, 4, step=0):
            pass


def test_finalize_inside_open_block_rejected():
    b = KernelBuilder("k")
    cm = b.if_(b.ilt(1, 2))
    cm.__enter__()
    with pytest.raises(BuildError, match="open control-flow"):
        b.finalize()


def test_store_to_const_buffer_rejected():
    b = KernelBuilder("k")
    c = b.param_buf("c", space=MemSpace.CONST)
    with pytest.raises(BuildError, match="const"):
        b.st(c, 0, 1.0)


def test_shared_buf_param_rejected():
    b = KernelBuilder("k")
    with pytest.raises(BuildError):
        b.param_buf("s", space=MemSpace.SHARED)


def test_atomic_on_const_rejected():
    b = KernelBuilder("k")
    c = b.param_buf("c", DType.I32, space=MemSpace.CONST)
    with pytest.raises(BuildError):
        b.atomic_add(c, 0, 1)


def test_immediate_coercion():
    b = KernelBuilder("k")
    r = b.fadd(1.5, 2)  # int immediate coerced into the fp context
    k_instr = b._body[-1]
    assert isinstance(k_instr, Instr)
    assert k_instr.op is Op.FADD
    assert r.dtype is DType.F32


def test_bad_operand_rejected():
    b = KernelBuilder("k")
    with pytest.raises(BuildError):
        b.iadd("nope", 1)  # type: ignore[arg-type]


def test_address_arithmetic_emitted_for_ld():
    b = KernelBuilder("k")
    x = b.param_buf("x")
    b.ld(x, b.tid_x)
    k = b.finalize()
    ops = [s.op for s in k.walk() if isinstance(s, Instr)]
    assert Op.ISHL in ops  # strength-reduced scale
    assert Op.IADD in ops  # base + offset
    assert any(isinstance(s, Load) for s in k.walk())


def test_ret_if_creates_if_with_return():
    from repro.simt.ir import Return

    b = KernelBuilder("k")
    b.ret_if(b.ilt(b.tid_x, 1))
    k = b.finalize()
    assert any(isinstance(s, Return) for s in k.walk())


def test_kernel_param_lookup():
    b = KernelBuilder("k")
    b.param_i32("n")
    k = b.finalize()
    assert k.param("n").dtype is DType.I32
    with pytest.raises(BuildError):
        k.param("missing")


def test_walk_covers_nested_bodies():
    b = KernelBuilder("k")
    x = b.param_buf("x", DType.I32)
    with b.for_range(0, 2):
        with b.if_(b.ilt(b.tid_x, 1)):
            b.st(x, 0, 1)
    k = b.finalize()
    kinds = {type(s).__name__ for s in k.walk()}
    assert {"While", "If", "Store", "Instr"} <= kinds
