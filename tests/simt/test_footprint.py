"""Unit tests for the per-block footprint disjointness analysis.

These exercise :mod:`repro.simt.footprint` directly (affine recovery,
counted-loop recognition, the symbolic disjointness proofs, concrete
extents and greedy grouping) plus the :func:`plan_batches` tier decisions
the compiled engine builds on.  Engine-level bit-parity of the resulting
batch schedules is covered by ``test_engine_parity`` and the fuzz oracle.
"""

import numpy as np

from repro.simt import Device, DType, Executor, KernelBuilder
from repro.simt.compiled import compile_kernel, plan_batches
from repro.simt.executor import stride_sampler
from repro.simt.footprint import (
    _lattice_hits_interval,
    _mixed_radix_injective,
    analyze,
    block_extents,
    group_blocks,
    symbolically_disjoint,
)
from repro.trace.collector import KernelTraceCollector
from repro.workloads import registry
from repro.workloads.base import RunContext

GRID = (8, 1)
BLOCK = (32, 1)
PARAMS = {"o": 1 << 16, "p": 1 << 20}


def _plan(kernel, grid=GRID, block=BLOCK, params=None):
    return plan_batches(
        compile_kernel(kernel), grid, block, dict(params or PARAMS)
    )


# ---------------------------------------------------------------------------
# Affine recovery and symbolic proofs


def test_per_lane_rmw_is_affine_and_symbolically_disjoint():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    b.st(o, i, b.iadd(b.ld(o, i), 1))
    fp = analyze(b.finalize(), GRID, BLOCK, PARAMS)
    assert fp.complete
    assert {s.kind for s in fp.sites} == {"load", "store"}
    # gid = ctaid.x*32 + tid.x: the store form carries a block symbol.
    store = next(s for s in fp.sites if s.kind == "store")
    assert any(fp.syms[i].is_block for i, _c in store.aff.terms)
    assert symbolically_disjoint(fp, GRID)
    assert _plan(b.finalize()).tier == "symbolic_clear"


def test_counted_loop_tiled_store_is_symbolically_disjoint():
    # Each thread writes 8 consecutive elements at gid*8: the loop symbol
    # (count 8, stride 4 bytes) nests under the tid/ctaid strides, so the
    # mixed-radix digit test proves cross-block injectivity.
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    base = b.imul(b.global_thread_id(), 8)
    with b.for_range(0, 8) as j:
        b.st(o, b.iadd(base, j), j)
    fp = analyze(b.finalize(), GRID, BLOCK, PARAMS)
    assert fp.complete
    (store,) = fp.sites
    assert store.in_loop
    loop_syms = [fp.syms[i] for i, _c in store.aff.terms if fp.syms[i].name == "loop"]
    assert loop_syms and loop_syms[0].count == 8
    assert symbolically_disjoint(fp, GRID)
    assert _plan(b.finalize()).tier == "symbolic_clear"


def test_overlapping_loop_store_pins():
    # Every block's loop writes the same 8 elements: self-disjointness
    # fails, and the identical per-block extents leave nothing to group.
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    b.ld(o, b.global_thread_id())  # hazard-flag the buffer
    with b.for_range(0, 8) as j:
        b.st(o, j, j)
    kernel = b.finalize()
    fp = analyze(kernel, GRID, BLOCK, PARAMS)
    assert fp.complete
    assert not symbolically_disjoint(fp, GRID)
    plan = _plan(kernel)
    assert plan.tier == "pinned"
    assert plan.pin_reason == "footprint-overlap"
    assert plan.limit == 1


def test_imod_folds_when_range_already_fits():
    # gid ranges over [0, 256) so ``gid % 512`` is an identity: the affine
    # form survives the mod and the per-lane store stays provably disjoint.
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    b.ld(o, b.global_thread_id())
    b.st(o, b.imod(b.global_thread_id(), 512), 1)
    fp = analyze(b.finalize(), GRID, BLOCK, PARAMS)
    assert symbolically_disjoint(fp, GRID)
    assert _plan(b.finalize()).tier == "symbolic_clear"


def test_imod_band_loses_block_structure():
    # ``gid % 8`` collapses every block onto the same 8-element band: the
    # result is a bounded anonymous symbol with no block coefficient, so
    # the symbolic proof must fail (and the write genuinely overlaps).
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    b.ld(o, b.global_thread_id())
    b.st(o, b.imod(b.global_thread_id(), 8), 1)
    fp = analyze(b.finalize(), GRID, BLOCK, PARAMS)
    assert fp.complete
    assert not symbolically_disjoint(fp, GRID)
    ext = block_extents(fp, GRID, GRID[0])
    store = next(e for e in ext if e[0] == "store")
    # Identical 32-byte band (absolute addresses) for every block.
    base = PARAMS["o"]
    assert store[2].tolist() == [base] * 8
    assert store[3].tolist() == [base + 31] * 8


def test_value_limit_rejects_overflowing_addresses():
    # A stride that could push addresses past 2**62 must demote the form
    # to unknown rather than reason with unwrapped Python ints.
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    b.ld(o, b.global_thread_id())
    b.st(o, b.imul(b.global_thread_id(), 1 << 55), 1)
    kernel = b.finalize()
    fp = analyze(kernel, GRID, BLOCK, PARAMS)
    assert not fp.complete
    plan = _plan(kernel)
    assert plan.tier == "pinned"
    assert plan.pin_reason == "opaque-address"


def test_indirect_address_is_opaque():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    b.st(o, b.ld(o, b.global_thread_id()), 1)
    fp = analyze(b.finalize(), GRID, BLOCK, PARAMS)
    assert not fp.complete
    plan = _plan(b.finalize())
    assert plan.tier == "pinned"
    assert plan.pin_reason == "opaque-address"


def test_atomics_pin_before_any_analysis():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    b.atomic_add(o, 0, 1)
    plan = _plan(b.finalize())
    assert plan.tier == "pinned"
    assert plan.pin_reason == "atomics"
    assert plan.limit == 1


# ---------------------------------------------------------------------------
# Concrete extents and greedy grouping


def test_band_plus_tiled_store_reaches_grouped_tier():
    # Store 1 tiles the buffer per block; store 2 writes a fixed 4-element
    # band at offset 64 (inside block 2's tile).  The symbolic pair test
    # fails, but the concrete extents prove most runs of blocks safe.
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    b.st(o, i, 1)
    b.st(o, b.iadd(b.imod(i, 4), 64), 2)
    kernel = b.finalize()
    fp = analyze(kernel, GRID, BLOCK, PARAMS)
    assert fp.complete
    assert not symbolically_disjoint(fp, GRID)
    plan = _plan(kernel)
    assert plan.tier == "footprint_grouped"
    assert plan.largest_group > 1
    assert plan.group_of is not None
    # group_of must be non-decreasing over linear block ids (contiguous runs).
    assert all(
        plan.group_of[i] <= plan.group_of[i + 1]
        for i in range(len(plan.group_of) - 1)
    )
    # Block 2 owns the tile the band lands in, so it cannot share a group
    # with its neighbours.
    assert plan.group_of[1] != plan.group_of[2]
    assert plan.group_of[2] != plan.group_of[3]


def test_group_blocks_synthetic_extents():
    nblocks = 6
    la = np.arange(nblocks, dtype=np.int64)
    # Disjoint per-block bytes: one group covers everything (cap permitting).
    disjoint = [("store", False, la * 4, la * 4 + 3)]
    group_of, groups, largest = group_blocks(disjoint, nblocks, cap=nblocks)
    assert groups == 1 and largest == nblocks
    # The cap splits the run even without conflicts.
    _go, groups, largest = group_blocks(disjoint, nblocks, cap=2)
    assert groups == 3 and largest == 2
    # A same-site *looped* store with identical extents conflicts pairwise.
    looped = [("store", True, np.zeros(nblocks, np.int64), np.full(nblocks, 3, np.int64))]
    _go, groups, largest = group_blocks(looped, nblocks, cap=nblocks)
    assert groups == nblocks and largest == 1
    # The same extents in a single-shot site are allowed to share a group:
    # one scatter's highest-lane-wins already reproduces sequential order.
    single = [("store", False, np.zeros(nblocks, np.int64), np.full(nblocks, 3, np.int64))]
    _go, groups, largest = group_blocks(single, nblocks, cap=nblocks)
    assert groups == 1 and largest == nblocks
    # A read overlapping earlier blocks' writes breaks the run.
    rmw_shifted = [
        ("store", False, la * 4, la * 4 + 3),
        ("load", False, la * 4 + 4, la * 4 + 7),
    ]
    _go, groups, largest = group_blocks(rmw_shifted, nblocks, cap=nblocks)
    assert largest == 1


# ---------------------------------------------------------------------------
# Helper predicates


def test_mixed_radix_injective():
    assert _mixed_radix_injective([(1, 4), (4, 8)])
    assert not _mixed_radix_injective([(1, 8), (4, 8)])  # stride 4 <= span 7
    assert not _mixed_radix_injective([(4, 2), (4, 2)])  # equal strides
    assert _mixed_radix_injective([])


def test_lattice_hits_interval():
    cmap = {"%ctaid.x": 128}
    assert not _lattice_hits_interval(cmap, (8, 1), -127, 127)
    assert _lattice_hits_interval(cmap, (8, 1), -128, 128)
    # A grid dimension absent from the coefficient map collides at delta 0.
    assert _lattice_hits_interval(cmap, (8, 8), -10, 10)


# ---------------------------------------------------------------------------
# Plan caching and workload tiers


def test_plan_batches_caches_per_kernel():
    b = KernelBuilder("k")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    b.st(o, i, b.iadd(b.ld(o, i), 1))
    ck = compile_kernel(b.finalize())
    p1 = plan_batches(ck, GRID, BLOCK, dict(PARAMS))
    p2 = plan_batches(ck, GRID, BLOCK, dict(PARAMS))
    assert p1 is p2
    # A different grid is a different cache entry.
    p3 = plan_batches(ck, (4, 1), BLOCK, dict(PARAMS))
    assert p3 is not p1


def test_transpose_workload_unpins_via_symbolic_tier():
    # The SDK transpose loops over tile rows writing dst: the old
    # buffer-granular hazard pinned it to one block per batch.  The
    # footprint pass must now prove the tiles disjoint.
    dev = Device()
    ex = Executor(
        dev,
        sinks=[KernelTraceCollector()],
        profile_filter=stride_sampler(2),
        engine="compiled",
    )
    ctx = RunContext(dev, ex, seed=7)
    registry.get("TR")(width=64, height=64).run(ctx)
    totals = ex.launch_stats_totals
    assert totals["hazard_tiers"].get("symbolic_clear", 0) >= 1
    assert ex.last_launch_stats["largest_batch"] > 1
