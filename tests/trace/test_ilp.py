"""Windowed ILP tracker: analytic cases and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.ilp import IlpTracker, IlpTrackerBank


def test_fully_independent_stream():
    t = IlpTracker(window=8)
    for i in range(8):
        t.note(f"r{i}", [])
    assert t.ilp == 8.0


def test_fully_serial_chain():
    t = IlpTracker(window=8)
    t.note("r0", [])
    for i in range(1, 8):
        t.note(f"r{i}", [f"r{i-1}"])
    assert t.ilp == 1.0


def test_two_independent_chains():
    t = IlpTracker(window=8)
    for i in range(4):
        t.note("a", ["a"] if i else [])
        t.note("b", ["b"] if i else [])
    assert t.ilp == 2.0


def test_partial_window_via_flush():
    t = IlpTracker(window=100)
    t.note("a", [])
    t.note("b", [])
    t.flush()
    assert t.ilp == 2.0


def test_window_reset_clears_dependences():
    t = IlpTracker(window=2)
    # Window 1: a <- (), b <- a : cp 2, ilp 1.
    t.note("a", [])
    t.note("b", ["a"])
    # Window 2: c <- b crosses the window boundary, so the dep is dropped.
    t.note("c", ["b"])
    t.note("d", [])
    t.flush()
    assert t.ilp == (2 / 2 + 2 / 1) / 2


def test_empty_stream_reports_serial_floor():
    assert IlpTracker(window=32).ilp == 1.0


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        IlpTracker(window=0)


def test_bank_runs_all_windows():
    bank = IlpTrackerBank()
    for i in range(300):
        bank.note(f"r{i}", [f"r{i-1}"] if i else [])
    bank.flush()
    results = bank.results()
    assert set(results) == {32, 64, 128, 256}
    assert all(v == 1.0 for v in results.values())


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.lists(st.integers(0, 5), max_size=3)),
        min_size=1,
        max_size=100,
    ),
    st.sampled_from([4, 16, 64]),
)
def test_ilp_bounds(stream, window):
    """1 <= ILP <= window, always."""
    t = IlpTracker(window)
    for dest, srcs in stream:
        t.note(f"r{dest}", [f"r{s}" for s in srcs])
    t.flush()
    assert 1.0 <= t.ilp <= window


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 200))
def test_independent_stream_window_average(n):
    t = IlpTracker(window=32)
    for i in range(n):
        t.note(f"r{i}", [])
    t.flush()
    q, r = divmod(n, 32)
    expected = (32.0 * q + r) / (q + (1 if r else 0))
    assert t.ilp == pytest.approx(expected)
