"""Property test: coalescing statistics vs a brute-force oracle.

Hypothesis generates arbitrary per-lane access indices; the collector's
vectorized transaction counting must agree with a naive per-warp set-based
computation for every input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt import Device, DType, Executor, KernelBuilder
from repro.trace import KernelTraceCollector

LANES = 64  # two warps


def _oracle(addrs, seg_bytes):
    """Naive transactions per warp: distinct segments among active lanes."""
    total = 0
    for w in range(LANES // 32):
        warp = addrs[w * 32 : (w + 1) * 32]
        total += len({a // seg_bytes for a in warp})
    return total


def _run_gather(indices):
    b = KernelBuilder("gather")
    idx = b.param_buf("idx", DType.I32)
    src = b.param_buf("src")
    out = b.param_buf("out")
    i = b.global_thread_id()
    b.st(out, i, b.ld(src, b.ld(idx, i)))
    dev = Device()
    ib = dev.from_array("idx", np.asarray(indices), DType.I32, readonly=True)
    sb = dev.from_array("src", np.arange(1024.0), readonly=True)
    ob = dev.alloc("out", LANES)
    collector = KernelTraceCollector()
    Executor(dev, sinks=[collector]).launch(
        b.finalize(), 2, 32, {"idx": ib, "src": sb, "out": ob}
    )
    return dev, sb, collector.profiles[0]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 1023), min_size=LANES, max_size=LANES))
def test_transactions_match_oracle(indices):
    dev, src_buf, profile = _run_gather(indices)
    addrs = [src_buf.base + 4 * i for i in indices]
    # The gather load contributes these transactions; the idx load and out
    # store are unit-stride: 4 x 32B and 1 x 128B per warp each.
    expected_32 = _oracle(addrs, 32) + 2 * (4 + 4)
    expected_128 = _oracle(addrs, 128) + 2 * (1 + 1)
    assert profile.gmem.transactions_32b == expected_32
    assert profile.gmem.transactions_128b == expected_128


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=LANES, max_size=LANES))
def test_unique_lines_match_oracle(indices):
    _dev, src_buf, profile = _run_gather(indices)
    # All touched 128B lines across the three access streams.
    lines = set()
    for i in indices:
        lines.add((src_buf.base + 4 * i) // 128)
    dev_lines = profile.locality.unique_lines
    # idx buffer: 64 i32 = 2 lines; out buffer: 64 f32 = 2 lines.
    assert dev_lines == len(lines) + 2 + 2


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 32))
def test_partial_warp_transactions(active):
    """Guarded access by the first `active` lanes only."""
    b = KernelBuilder("partial")
    src = b.param_buf("src")
    out = b.param_buf("out")
    i = b.global_thread_id()
    with b.if_(b.ilt(i, active)):
        b.st(out, i, b.ld(src, i))
    dev = Device()
    sb = dev.from_array("src", np.arange(32.0), readonly=True)
    ob = dev.alloc("out", 32)
    collector = KernelTraceCollector()
    Executor(dev, sinks=[collector]).launch(b.finalize(), 1, 32, {"src": sb, "out": ob})
    p = collector.profiles[0]
    expected = -(-active * 4 // 32)  # ceil(active elements * 4B / 32B)
    assert p.gmem.transactions_32b == 2 * expected
    assert p.gmem.coalesced_frac == 1.0
