"""Profile determinism: same workload + seed + config → identical bytes.

The canonical byte forms (:func:`kernel_profile_bytes`,
:func:`workload_profile_bytes`) are the fuzzer's equality primitive and the
cache's stability assumption, so the whole pipeline behind them — kernel
launches, sampling, collection, serialization — must be bit-reproducible.
"""

from repro.trace.serialize import kernel_profile_bytes, workload_profile_bytes
from repro.workloads import registry
from repro.workloads.runner import run_workload


def _profile(seed=1234, sample_blocks=8, engine="compiled"):
    return run_workload(
        registry.get("HG")(),
        verify=False,
        sample_blocks=sample_blocks,
        seed=seed,
        engine=engine,
    )


def test_repeated_runs_serialize_byte_identical():
    first = workload_profile_bytes(_profile())
    second = workload_profile_bytes(_profile())
    assert first == second


def test_engines_serialize_byte_identical():
    assert workload_profile_bytes(_profile(engine="interpreted")) == workload_profile_bytes(
        _profile(engine="compiled")
    )


def test_seed_changes_the_bytes():
    # The canonical form must be sensitive to real input changes, not just
    # stable: a different data seed reaches the data-dependent histogram.
    assert workload_profile_bytes(_profile(seed=1)) != workload_profile_bytes(_profile(seed=2))


def test_kernel_profile_bytes_are_canonical_json():
    import json

    blob = kernel_profile_bytes(_profile().kernels[0])
    doc = json.loads(blob)
    assert json.dumps(doc, sort_keys=True, separators=(",", ":")).encode() == blob
