"""Collector statistics validated against brute-force references."""

import numpy as np
import pytest

from repro.simt import Device, DType, Executor, KernelBuilder, stride_sampler
from repro.trace import CollectorConfig, KernelTraceCollector
from tests.conftest import run_kernel


def _strided_kernel(stride: int):
    b = KernelBuilder(f"stride{stride}")
    src = b.param_buf("src")
    dst = b.param_buf("dst")
    i = b.global_thread_id()
    j = b.imul(i, stride)
    b.st(dst, j, b.ld(src, j))
    return b.finalize()


def _run_strided(stride: int, nthreads: int = 64):
    dev = Device()
    src = dev.from_array("src", np.arange(float(nthreads * stride)))
    dst = dev.alloc("dst", nthreads * stride)
    dev2, profile = run_kernel(
        _strided_kernel(stride), nthreads // 32, 32, {"src": src, "dst": dst}, device=dev
    )
    return profile


@pytest.mark.parametrize(
    "stride,expected_t32",
    [(1, 4), (2, 8), (4, 16), (8, 32), (16, 32), (32, 32)],
)
def test_transactions_vs_stride(stride, expected_t32):
    """Element stride s costs min(4*s, 32) 32B transactions per warp access."""
    profile = _run_strided(stride)
    assert profile.gmem.trans_per_access_32b == expected_t32


def test_unit_stride_classified():
    profile = _run_strided(1)
    assert profile.gmem.unit_stride_frac == 1.0
    assert profile.gmem.coalesced_frac == 1.0
    assert profile.gmem.broadcast_frac == 0.0


def test_broadcast_classified():
    b = KernelBuilder("bcast")
    src = b.param_buf("src")
    dst = b.param_buf("dst")
    v = b.ld(src, 7)  # every lane loads the same element
    b.st(dst, b.global_thread_id(), v)
    dev = Device()
    src_b = dev.from_array("src", np.arange(16.0))
    dst_b = dev.alloc("dst", 64)
    _, profile = run_kernel(b.finalize(), 2, 32, {"src": src_b, "dst": dst_b}, device=dev)
    # The load is a broadcast (1 transaction); the store is unit stride.
    assert profile.gmem.broadcast_frac == pytest.approx(0.5)
    assert profile.gmem.unit_stride_frac == pytest.approx(0.5)


def test_local_stride_histogram():
    """A grid-stride loop yields constant large per-thread strides."""
    b = KernelBuilder("gs")
    src = b.param_buf("src")
    dst = b.param_buf("dst")
    n = b.param_i32("n")
    i = b.let_i32(b.global_thread_id())
    step = b.imul(b.ntid_x, b.nctaid_x)
    loop = b.while_loop()
    with loop.cond():
        loop.set_cond(b.ilt(i, n))
    with loop.body():
        b.st(dst, i, b.ld(src, i))
        b.assign(i, b.iadd(i, step))
    dev = Device()
    n_el = 512
    src_b = dev.from_array("src", np.arange(float(n_el)))
    dst_b = dev.alloc("dst", n_el)
    _, profile = run_kernel(
        b.finalize(), 2, 32, {"src": src_b, "dst": dst_b, "n": n_el}, device=dev
    )
    # Each thread revisits addresses 64 elements (256B) apart -> "long".
    assert profile.gmem.local_stride_frac("long") == 1.0


def test_bank_conflict_free():
    b = KernelBuilder("noconf")
    o = b.param_buf("o")
    s = b.shared("s", 32)
    b.sst(s, b.tid_x, 1.0)  # lane i -> bank i
    b.st(o, b.tid_x, b.sld(s, b.tid_x))
    dev = Device()
    o_buf = dev.alloc("o", 32)
    _, profile = run_kernel(b.finalize(), 1, 32, {"o": o_buf}, device=dev)
    assert profile.shmem.conflict_degree == 1.0
    assert profile.shmem.conflicted_frac == 0.0


def test_two_way_bank_conflict():
    b = KernelBuilder("conf2")
    o = b.param_buf("o")
    s = b.shared("s", 64)
    idx = b.imul(b.tid_x, 2)  # stride-2: banks repeat twice
    b.sst(s, idx, 1.0)
    b.st(o, b.tid_x, b.sld(s, idx))
    dev = Device()
    o_buf = dev.alloc("o", 32)
    _, profile = run_kernel(b.finalize(), 1, 32, {"o": o_buf}, device=dev)
    assert profile.shmem.conflict_degree == 2.0
    assert profile.shmem.conflicted_frac == 1.0


def test_same_word_broadcast_is_conflict_free():
    b = KernelBuilder("shbcast")
    o = b.param_buf("o")
    s = b.shared("s", 32)
    b.sst(s, b.tid_x, 1.0)
    b.st(o, b.tid_x, b.sld(s, 0))  # all lanes read word 0
    dev = Device()
    o_buf = dev.alloc("o", 32)
    _, profile = run_kernel(b.finalize(), 1, 32, {"o": o_buf}, device=dev)
    assert profile.shmem.conflict_degree == pytest.approx(1.0)


def test_divergence_counts_exact():
    b = KernelBuilder("div")
    o = b.param_buf("o", DType.I32)
    i = b.global_thread_id()
    r = b.let_i32(0)
    with b.if_(b.ilt(b.imod(i, 4), 2)):  # half of each warp
        b.assign(r, 1)
    with b.if_(b.ilt(i, 32)):  # warp-aligned: never divergent
        b.assign(r, 2)
    b.st(o, i, r)
    dev = Device()
    o_buf = dev.alloc("o", 64, DType.I32)
    _, profile = run_kernel(b.finalize(), 1, 64, {"o": o_buf}, device=dev)
    # 2 warps x 2 branches = 4 events; only the mod-4 branch diverges.
    assert profile.branch.events == 4
    assert profile.branch.divergent == 2
    assert profile.branch.divergence_rate == 0.5


def test_simd_efficiency_accounting():
    b = KernelBuilder("simd")
    o = b.param_buf("o", DType.I32)
    with b.if_(b.ilt(b.tid_x, 8)):  # quarter of the single warp
        b.st(o, b.tid_x, 1)
    dev = Device()
    o_buf = dev.alloc("o", 32, DType.I32)
    _, profile = run_kernel(b.finalize(), 1, 32, {"o": o_buf}, device=dev)
    # Instructions: tid reads etc. run full-width; the guarded region at 8/32.
    assert 0.0 < profile.simd_efficiency < 1.0


def test_warp_instruction_vs_thread_instruction_counts():
    b = KernelBuilder("wi")
    o = b.param_buf("o", DType.I32)
    with b.if_(b.ilt(b.global_thread_id(), 32)):  # only warp 0 proceeds
        b.st(o, b.tid_x, 1)
    dev = Device()
    o_buf = dev.alloc("o", 32, DType.I32)
    _, profile = run_kernel(b.finalize(), 1, 64, {"o": o_buf}, device=dev)
    # The guarded store issues for 1 warp but 32 threads.
    assert profile.warp_instrs["st.global"] == 1
    assert profile.thread_instrs["st.global"] == 32


def test_barrier_counted():
    b = KernelBuilder("bar")
    o = b.param_buf("o", DType.I32)
    s = b.shared("s", 32, DType.I32)
    b.sst(s, b.tid_x, 0)
    b.barrier()
    b.barrier()
    b.st(o, b.tid_x, b.sld(s, b.tid_x))
    dev = Device()
    o_buf = dev.alloc("o", 32, DType.I32)
    _, profile = run_kernel(b.finalize(), 1, 32, {"o": o_buf}, device=dev)
    assert profile.warp_instrs["barrier"] == 2


def test_sampling_profiles_subset_of_blocks():
    from tests.conftest import build_copy_kernel

    k = build_copy_kernel()
    dev = Device()
    n = 64 * 32
    src = dev.from_array("src", np.arange(float(n)))
    dst = dev.alloc("dst", n)
    collector = KernelTraceCollector()
    ex = Executor(dev, sinks=[collector], profile_filter=stride_sampler(8))
    ex.launch(k, 64, 32, {"src": src, "dst": dst, "n": n})
    p = collector.profiles[0]
    assert p.profiled_blocks == 8
    assert p.total_blocks == 64
    assert p.sampling_scale == pytest.approx(8.0)
    # Functional execution still covered every block.
    assert np.array_equal(dev.download(dst), np.arange(float(n)))
    # Observed counts reflect only the sampled blocks.
    assert p.thread_instrs["st.global"] == 8 * 32


def test_locality_stats_for_repeated_sweeps():
    b = KernelBuilder("sweep")
    src = b.param_buf("src")
    dst = b.param_buf("dst")
    i = b.global_thread_id()
    v1 = b.ld(src, i)
    v2 = b.ld(src, i)  # immediate re-touch of the same lines
    b.st(dst, i, b.fadd(v1, v2))
    dev = Device()
    src_b = dev.from_array("src", np.arange(64.0))
    dst_b = dev.alloc("dst", 64)
    _, p = run_kernel(b.finalize(), 2, 32, {"src": src_b, "dst": dst_b}, device=dev)
    assert p.locality.cold_miss_rate < 1.0
    assert p.locality.reuse_cdf_at(16) == 1.0  # re-touches are immediate


def test_collector_config_line_size_changes_footprint():
    from tests.conftest import build_copy_kernel

    k = build_copy_kernel()
    results = {}
    for line_bytes in (64, 128):
        dev = Device()
        n = 1024
        src = dev.from_array("src", np.arange(float(n)))
        dst = dev.alloc("dst", n)
        collector = KernelTraceCollector(CollectorConfig(line_bytes=line_bytes))
        Executor(dev, sinks=[collector]).launch(k, 8, 128, {"src": src, "dst": dst, "n": n})
        results[line_bytes] = collector.profiles[0].locality.unique_lines
    assert results[64] == 2 * results[128]


def test_multiple_launches_produce_multiple_profiles():
    from tests.conftest import build_copy_kernel

    k = build_copy_kernel()
    dev = Device()
    src = dev.from_array("src", np.arange(64.0))
    dst = dev.alloc("dst", 64)
    collector = KernelTraceCollector()
    ex = Executor(dev, sinks=[collector])
    ex.launch(k, 2, 32, {"src": src, "dst": dst, "n": 64})
    ex.launch(k, 2, 32, {"src": src, "dst": dst, "n": 64})
    assert len(collector.profiles) == 2
    assert collector.profiles[0].total_thread_instrs == collector.profiles[1].total_thread_instrs
