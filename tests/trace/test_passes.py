"""The pluggable analysis-pass architecture.

Covers the pass registry, demand-driven subset collection (subset-run
sections must be bit-identical to the full run's, on both engines), the
collector-config validation, and section-level profile merging.
"""

import pytest

from repro.trace import PASS_FIELDS, PASS_NAMES, merge_profiles
from repro.trace.collector import CollectorConfig, KernelTraceCollector
from repro.trace.passes import (
    get_pass,
    pass_names,
    pass_source_file,
    resolve_passes,
)
from repro.trace.profile import WorkloadProfile, canonical_passes
from repro.trace.serialize import (
    workload_header_bytes,
    workload_section_bytes,
)
from repro.workloads.runner import run_workload

#: Workloads exercising every pass between them (KM fetches textures).
SUBSET_WORKLOADS = ["VA", "HG", "KM"]


# ---------------------------------------------------------------------------
# Registry


def test_every_declared_pass_is_registered():
    assert pass_names() == PASS_NAMES


def test_pass_field_ownership_is_consistent():
    for name in PASS_NAMES:
        cls = get_pass(name)
        assert tuple(cls.fields) == PASS_FIELDS[name]
        assert cls.subscribes  # every pass consumes at least one event kind


def test_resolve_passes_canonicalizes_and_rejects_unknown():
    assert resolve_passes(None) == PASS_NAMES
    assert resolve_passes(["branch", "mix", "mix"]) == ("mix", "branch")
    with pytest.raises(ValueError, match="unknown analysis pass"):
        resolve_passes(["mix", "nonsense"])


def test_pass_source_files_are_distinct_modules():
    files = {pass_source_file(name) for name in PASS_NAMES}
    assert len(files) == len(PASS_NAMES)


def test_collector_subscriptions_shrink_with_passes():
    assert KernelTraceCollector().subscriptions() == {"instr", "mem", "branch"}
    assert KernelTraceCollector(passes=["mix"]).subscriptions() == {"instr"}
    assert KernelTraceCollector(passes=["branch"]).subscriptions() == {"branch"}
    assert KernelTraceCollector(passes=["reuse"]).subscriptions() == {"mem"}


# ---------------------------------------------------------------------------
# Collector-config validation


def test_collector_config_rejects_non_power_of_two_geometry():
    for field in ("line_bytes", "seg_small", "seg_large"):
        with pytest.raises(ValueError, match="power of two"):
            CollectorConfig(**{field: 48})
        with pytest.raises(ValueError, match="power of two"):
            CollectorConfig(**{field: 0})
        with pytest.raises(ValueError, match="power of two"):
            CollectorConfig(**{field: -64})
    # Valid powers of two still derive the shift widths.
    config = CollectorConfig(line_bytes=64, seg_small=16, seg_large=256)
    assert (config.line_bits, config.seg_small_bits, config.seg_large_bits) == (6, 4, 8)


# ---------------------------------------------------------------------------
# Subset parity: a subset run's sections are bit-identical to the full run's


def _profile(abbrev: str, engine: str, passes=None) -> WorkloadProfile:
    return run_workload(
        abbrev, verify=False, sample_blocks=8, engine=engine, passes=passes
    )


@pytest.mark.parametrize("engine", ["interpreted", "compiled"])
def test_subset_sections_match_full_run(engine):
    subsets = [("mix",), ("branch",), ("mix", "branch"), ("coalescing", "reuse"), ("ilp", "shared", "texture")]
    for abbrev in SUBSET_WORKLOADS:
        full = _profile(abbrev, engine)
        assert full.passes == PASS_NAMES
        full_headers = workload_header_bytes(full)
        for subset in subsets:
            partial = _profile(abbrev, engine, passes=subset)
            assert partial.passes == canonical_passes(subset)
            # Headers carry the pass list, so compare them via the partial's
            # own pass set spliced into the full profile's header fields.
            for kp_full, kp_part in zip(full.kernels, partial.kernels):
                assert kp_full.kernel_name == kp_part.kernel_name
                assert kp_full.profiled_blocks == kp_part.profiled_blocks
            for name in partial.passes:
                assert workload_section_bytes(partial, name) == workload_section_bytes(
                    full, name
                ), f"{abbrev}/{engine}: pass {name!r} section differs from full run"
        assert full_headers == workload_header_bytes(full)


@pytest.mark.parametrize("engine", ["interpreted", "compiled"])
def test_cross_engine_subset_sections_identical(engine):
    # mix+branch subset across engines must also agree bit-for-bit.
    a = _profile("HG", "interpreted", passes=("mix", "branch"))
    b = _profile("HG", "compiled", passes=("mix", "branch"))
    for name in a.passes:
        assert workload_section_bytes(a, name) == workload_section_bytes(b, name)


# ---------------------------------------------------------------------------
# Section merging


def test_merge_profiles_combines_disjoint_sections():
    base = _profile("VA", "compiled", passes=("mix", "branch"))
    update = _profile("VA", "compiled", passes=("coalescing", "reuse"))
    merged = merge_profiles(base, update, update.passes)
    assert merged is not None
    assert merged.passes == ("mix", "branch", "coalescing", "reuse")
    full = _profile("VA", "compiled", passes=merged.passes)
    for name in merged.passes:
        assert workload_section_bytes(merged, name) == workload_section_bytes(full, name)


def test_merge_profiles_rejects_header_mismatch():
    base = _profile("VA", "compiled", passes=("mix",))
    other = _profile("HG", "compiled", passes=("branch",))
    assert merge_profiles(base, other, other.passes) is None
