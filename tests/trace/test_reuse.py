"""Reuse-distance engine: unit cases plus property test against a naive oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.reuse import ReuseDistanceTracker


def naive_stack_distances(lines):
    """O(N^2) Mattson reference: distinct lines since previous access."""
    out = []
    history = []
    for line in lines:
        if line in history:
            pos = len(history) - 1 - history[::-1].index(line)
            out.append(len(set(history[pos + 1 :])))
            history.append(line)
        else:
            out.append(-1)
            history.append(line)
    return out


def test_simple_sequence():
    t = ReuseDistanceTracker()
    assert t.access(1) == -1
    assert t.access(2) == -1
    assert t.access(1) == 1  # one distinct line (2) in between
    assert t.access(1) == 0  # immediate re-reference
    assert t.access(3) == -1
    assert t.access(2) == 2  # 1 and 3 in between


def test_cold_miss_accounting():
    t = ReuseDistanceTracker()
    for line in [1, 2, 3, 1, 2, 3]:
        t.access(line)
    assert t.cold_misses == 3
    assert t.accesses == 6
    assert t.cold_miss_rate == 0.5
    assert t.unique_lines == 3


def test_histogram_buckets():
    t = ReuseDistanceTracker()
    t.access(0)
    t.access(0)  # distance 0 -> bucket 0
    t.access(1)
    t.access(0)  # distance 1 -> bucket 1
    assert t.histogram[0] == 1
    assert t.histogram[1] == 1


def test_cdf_at_thresholds():
    t = ReuseDistanceTracker()
    # Touch 100 lines, then re-touch line 0: distance 99.
    for line in range(100):
        t.access(line)
    t.access(0)
    assert t.cdf_at(64) == 0.0
    assert t.cdf_at(128) == 1.0


def test_cdf_empty_is_zero():
    t = ReuseDistanceTracker()
    assert t.cdf_at(16) == 0.0
    t.access(5)
    assert t.cdf_at(16) == 0.0  # only a cold miss, no reuses


def test_fenwick_growth_beyond_initial_capacity():
    t = ReuseDistanceTracker()
    n = 3000  # exceeds the initial Fenwick capacity of 1024
    for i in range(n):
        t.access(i)
    assert t.access(0) == n - 1


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=120))
def test_matches_naive_oracle(lines):
    t = ReuseDistanceTracker()
    got = [t.access(line) for line in lines]
    assert got == naive_stack_distances(lines)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
def test_invariants(lines):
    t = ReuseDistanceTracker()
    for line in lines:
        d = t.access(line)
        assert d == -1 or 0 <= d < t.unique_lines
    assert t.cold_misses == len(set(lines))
    assert t.accesses == len(lines)
    assert int(t.histogram.sum()) + t.cold_misses == t.accesses
