"""JSON profile serialization: exact round-trip of every metric input."""

import io
import json

import numpy as np
import pytest

from repro.core import metrics
from repro.trace.serialize import (
    dump_profiles,
    kernel_from_dict,
    kernel_to_dict,
    load_profiles,
)


def test_roundtrip_via_file(tmp_path, suite_profiles):
    path = str(tmp_path / "profiles.json")
    dump_profiles(suite_profiles, path)
    loaded = load_profiles(path)
    assert [p.workload for p in loaded] == [p.workload for p in suite_profiles]


def test_roundtrip_preserves_metrics_exactly(suite_profiles):
    buf = io.StringIO()
    dump_profiles(suite_profiles, buf)
    buf.seek(0)
    loaded = load_profiles(buf)
    for original, restored in zip(suite_profiles, loaded):
        assert metrics.extract_vector(original) == metrics.extract_vector(restored)


def test_kernel_dict_roundtrip_fields(suite_profiles):
    kernel = suite_profiles[0].kernels[0]
    restored = kernel_from_dict(kernel_to_dict(kernel))
    assert restored.kernel_name == kernel.kernel_name
    assert restored.grid == kernel.grid
    assert restored.ilp == kernel.ilp
    assert restored.branch == kernel.branch
    assert np.array_equal(restored.locality.reuse_histogram, kernel.locality.reuse_histogram)
    assert restored.texture.accesses == kernel.texture.accesses


def test_json_is_plain_data(suite_profiles):
    buf = io.StringIO()
    dump_profiles(suite_profiles[:2], buf)
    payload = json.loads(buf.getvalue())
    assert payload["format_version"] == 2
    assert len(payload["profiles"]) == 2
    # Sectioned layout: every kernel dict carries its pass list and one
    # section per pass.
    kernel = payload["profiles"][0]["kernels"][0]
    assert set(kernel["sections"]) == set(kernel["passes"])


def test_version_check(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format_version": 99, "profiles": []}))
    with pytest.raises(ValueError, match="version"):
        load_profiles(str(path))
