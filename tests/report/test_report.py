"""Text-mode tables and figures."""

import numpy as np

from repro.core.analysis.hier import linkage
from repro.report import ascii_table, csv_lines, format_cell, text_bars, text_dendrogram, text_scatter


def test_format_cell_types():
    assert format_cell("x") == "x"
    assert format_cell(3) == "3"
    assert format_cell(True) == "yes"
    assert format_cell(0.5) == "0.500"
    assert "e" in format_cell(1.23e-9)


def test_ascii_table_alignment():
    out = ascii_table(["name", "v"], [["a", 1.0], ["longer", 22.5]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    widths = {len(line) for line in lines[1:] if line}
    assert len(widths) == 1  # every row padded to the same width


def test_ascii_table_empty_rows():
    out = ascii_table(["a"], [])
    assert "a" in out


def test_csv_lines():
    out = csv_lines(["a", "b"], [[1, 2.5], [3, 4.0]])
    lines = out.strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1].startswith("1,2.5")


def test_text_scatter_contains_labels():
    out = text_scatter([0, 1, 2], [0, 1, 2], ["AA", "BB", "CC"])
    assert "AA" in out and "CC" in out
    assert "PC1" in out


def test_text_scatter_degenerate_axis():
    out = text_scatter([1, 1], [0, 5], ["A", "B"])
    assert "A" in out


def test_text_bars_scaled():
    out = text_bars(["x", "yy"], [1.0, 2.0])
    lines = out.splitlines()
    assert lines[1].count("#") == 2 * lines[0].count("#")


def test_text_bars_zero_values():
    out = text_bars(["x"], [0.0])
    assert "0.000" in out


def test_text_dendrogram_lists_all_merges():
    rng = np.random.default_rng(0)
    pts = rng.standard_normal((5, 2))
    dendro = linkage(pts, ["a", "b", "c", "d", "e"], method="average")
    out = text_dendrogram(dendro)
    assert len(out.strip().splitlines()) == 4
    for label in "abcde":
        assert label in out


def test_text_dendrogram_empty():
    dendro = linkage(np.zeros((1, 2)), ["only"], method="average")
    assert "only" in text_dendrogram(dendro)


def test_md_table():
    from repro.report import md_table

    out = md_table(["a", "b"], [[1, 2.5]])
    lines = out.strip().splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2].startswith("| 1 | 2.5")


def test_render_analysis_report_sections(suite_profiles):
    from repro.api import analyze
    from repro.report import render_analysis_report

    text = render_analysis_report(analyze(suite_profiles))
    for section in ("## Workloads", "## Principal components", "## Clusters",
                    "## Suite coverage", "## Subspace diversity"):
        assert section in text
    assert "branch divergence" in text
