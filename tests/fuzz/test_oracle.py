"""Oracle behaviour: clean agreement, invariants, and the planted mutation."""

import pytest

from repro.fuzz import case_stmt_count, generate_case, run_case, shrink_case
from repro.fuzz.campaign import case_seed
from repro.fuzz.oracle import _run_engine, batch_plan, check_profile_invariants
from repro.simt import compiled
from repro.simt.ir import Barrier


def test_small_campaign_window_is_clean():
    # A slice of the committed acceptance campaign (seed 0): every case
    # passes the full tri-engine oracle.
    for i in range(20):
        report = run_case(generate_case(case_seed(0, i)))
        assert report.ok, (i, report.failures)
        assert report.engines_run[0] == "interpreted"
        if report.tag == "lane-disjoint" and report.case["block"][1] == 1:
            assert "reference" in report.engines_run


def test_batch_plan_covers_the_edges():
    assert batch_plan(6) == [None, 1, 3, 7]
    # Dedup when the grid collapses values together.
    assert batch_plan(2) == [None, 1, 3]


def test_profile_invariants_reject_corrupted_accounting():
    case = generate_case(case_seed(0, 0))
    outcome = _run_engine(case, "interpreted")
    assert outcome.status == "ok"
    assert check_profile_invariants(outcome.profile) == []

    kp = outcome.profile.kernels[0]
    kp.simd_lane_sum += 1
    failures = check_profile_invariants(outcome.profile)
    assert any("simd_lane_sum" in f for f in failures)


def _barrier_compiler_without_recheck(ck, stmt, observe):
    # The planted bug: the batched engine stops re-checking that every
    # non-retired lane reached __syncthreads (keeps profile accounting).
    if observe:

        def run(st, act):
            compiled._note_instr(st, stmt, compiled.OpCategory.BARRIER, act)

        return run

    def run(st, act):
        pass

    return run


def test_planted_barrier_mutation_is_caught_and_shrinks_small(monkeypatch):
    monkeypatch.setitem(compiled._COMPILERS, Barrier, _barrier_compiler_without_recheck)

    failing = None
    for i in range(60):
        case = generate_case(case_seed(0, i))
        if not run_case(case).ok:
            failing = case
            break
    assert failing is not None, "mutation survived 60 fuzz cases"

    shrunk = shrink_case(failing, lambda c: not run_case(c).ok)
    assert case_stmt_count(shrunk) <= 10

    report = run_case(shrunk)
    assert not report.ok
    assert any("status" in f and "ExecutionError" in f for f in report.failures)

    # Undo the mutation: the shrunk case must pass on the healthy engine.
    monkeypatch.setitem(compiled._COMPILERS, Barrier, compiled._compile_barrier)
    assert run_case(shrunk).ok


def test_communicating_cases_skip_the_reference_leg():
    for i in range(80):
        report = run_case(generate_case(case_seed(5, i)))
        if report.tag == "communicating":
            assert "reference" not in report.engines_run
            return
    pytest.fail("no communicating case in 80 seeds")
