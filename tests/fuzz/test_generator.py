"""Generator properties: determinism, coverage, introspection."""

from repro.fuzz import build_kernel, case_stmt_count, describe_case, generate_case
from repro.fuzz.campaign import case_seed
from repro.fuzz.generator import (
    ALIAS_SEED_BASE,
    ALIAS_STMT_KINDS,
    STMT_KINDS,
    make_device,
)
from repro.simt import classify_kernel, disassemble


def test_same_seed_same_case():
    a = generate_case(1234)
    b = generate_case(1234)
    assert a == b
    assert disassemble(build_kernel(a)) == disassemble(build_kernel(b))


def test_different_seeds_differ():
    assert generate_case(1) != generate_case(2)


def test_device_init_is_deterministic():
    case = generate_case(7)
    d1, b1 = make_device(case)
    d2, b2 = make_device(case)
    assert sorted(b1) == sorted(b2)
    for name in b1:
        assert d1.download(b1[name]).tobytes() == d2.download(b2[name]).tobytes()


def test_generator_covers_the_ir_surface():
    # Over a modest seed range every statement kind must appear, nesting
    # must reach depth 2, and both semantic classes must be exercised.
    seen = set()
    depths = set()
    tags = set()

    def walk(stmts, depth):
        depths.add(depth)
        for s in stmts:
            seen.add(s["k"])
            if s["k"] == "if":
                walk(s["then"], depth + 1)
                walk(s["else"], depth + 1)
            elif s["k"] == "while":
                walk(s["body"], depth + 1)

    for i in range(120):
        seed = case_seed(11, i)
        assert seed >= ALIAS_SEED_BASE  # this stream draws the extended grammar
        case = generate_case(seed)
        walk(case["stmts"], 0)
        tags.add(classify_kernel(build_kernel(case)).tag)

    # The "cast" grammar entry emits concrete "i2f"/"f2i" statements; seeds
    # in the aliasing band add the "oload"/"bandstore" planner-stress kinds.
    kinds = {k for k, _ in ALIAS_STMT_KINDS} - {"cast"} | {"i2f", "f2i"}
    assert seen == kinds, f"kinds never generated: {kinds - seen}"
    assert 2 in depths, "control flow never nested two levels deep"
    assert tags == {"lane-disjoint", "communicating"}

    # Below the band the original grammar is untouched — corpus seeds and
    # historical campaigns replay bit-identically.
    old = set()
    for i in range(60):
        walk_target = generate_case(1000 + i)["stmts"]

        def collect(stmts):
            for s in stmts:
                old.add(s["k"])
                if s["k"] == "if":
                    collect(s["then"])
                    collect(s["else"])
                elif s["k"] == "while":
                    collect(s["body"])

        collect(walk_target)
    assert old <= {k for k, _ in STMT_KINDS} - {"cast"} | {"i2f", "f2i"}


def test_case_stmt_count_counts_nested_bodies():
    case = {
        "seed": 0,
        "grid": 1,
        "block": [32, 1],
        "stmts": [
            {"k": "ret"},
            {"k": "if", "then": [{"k": "ret"}, {"k": "ret"}], "else": [], "c": None},
        ],
    }
    assert case_stmt_count(case) == 4


def test_describe_case_mentions_shape_and_kinds():
    case = generate_case(42)
    text = describe_case(case)
    assert "seed=42" in text
    assert "grid=" in text and "block=" in text
