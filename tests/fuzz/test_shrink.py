"""Shrinker unit tests with synthetic predicates (no engines involved)."""

from repro.fuzz import case_stmt_count, shrink_case


def _case(stmts):
    return {"seed": 0, "grid": 2, "block": [32, 1], "stmts": stmts}


def _has_kind(stmts, kind):
    for s in stmts:
        if s["k"] == kind:
            return True
        if s["k"] == "if" and (_has_kind(s["then"], kind) or _has_kind(s["else"], kind)):
            return True
        if s["k"] == "while" and _has_kind(s["body"], kind):
            return True
    return False


def test_shrinks_to_single_culprit_statement():
    case = _case(
        [
            {"k": "iop", "op": "iadd", "d": 0, "a": 1, "b": 2},
            {"k": "if", "c": None, "then": [{"k": "barrier"}, {"k": "ret"}], "else": []},
            {"k": "fop", "op": "fadd", "d": 0, "a": 1, "b": 2},
        ]
    )
    shrunk = shrink_case(case, lambda c: _has_kind(c["stmts"], "barrier"))
    assert case_stmt_count(shrunk) == 1
    assert shrunk["stmts"][0]["k"] == "barrier"


def test_hoists_while_bodies():
    case = _case(
        [
            {"k": "while", "src": 0, "m": 3, "body": [{"k": "barrier"}, {"k": "ret"}]},
        ]
    )
    shrunk = shrink_case(case, lambda c: _has_kind(c["stmts"], "barrier"))
    assert shrunk["stmts"] == [{"k": "barrier"}]


def test_returns_input_when_nothing_smaller_fails():
    case = _case([{"k": "barrier"}])
    shrunk = shrink_case(case, lambda c: _has_kind(c["stmts"], "barrier"))
    assert shrunk == case
    assert shrunk is not case  # always a copy; the input is never mutated


def test_shrink_never_mutates_the_input():
    stmts = [
        {"k": "if", "c": None, "then": [{"k": "barrier"}], "else": [{"k": "ret"}]},
        {"k": "ret"},
    ]
    case = _case(stmts)
    import copy

    snapshot = copy.deepcopy(case)
    shrink_case(case, lambda c: _has_kind(c["stmts"], "barrier"))
    assert case == snapshot
