"""Regression-corpus replay: every committed case passes the full oracle.

These entries were picked for feature diversity (barriers, atomics, shared
read/write, overlapping stores, nested control flow, SFU chains, 2-D
blocks, an agreed-fault launch, shared/texture event buffers recorded from
genuinely multi-block columnar batches, and two store-hazard shapes whose
overlap-window stores collide with the epilogue across blocks) — replaying
them pins the generator's seed → case mapping, the engines' agreement on
each shape, and scalar-vs-columnar per-pass section parity.

Four entries come from the aliasing grammar band (seeds above
``ALIAS_SEED_BASE``) and pin the footprint-disjointness batch planner's
tiers: a looped store the symbolic pass proves disjoint (un-pinned), a
looped store with genuine cross-block overlap (stays pinned), a bandstore
whose concrete extents group most blocks, and an output-buffer load whose
interval clears the stores (grouped).
"""

import pytest

from repro.fuzz import (
    build_kernel,
    case_path_name,
    default_corpus_dir,
    generate_case,
    iter_corpus,
    load_case,
    run_case,
    save_case,
)
from repro.simt import classify_kernel

ENTRIES = list(iter_corpus(default_corpus_dir()))


def test_corpus_is_present_and_diverse():
    assert len(ENTRIES) >= 14
    tags = {meta["tag"] for _, _, meta in ENTRIES}
    assert tags == {"lane-disjoint", "communicating"}


@pytest.mark.parametrize("path,case,meta", ENTRIES, ids=[p.split("/")[-1] for p, _, _ in ENTRIES])
def test_corpus_case_replays_clean(path, case, meta):
    # The case still regenerates from its seed (generator determinism is
    # part of what the corpus pins down)...
    assert generate_case(case["seed"]) == case
    # ...its semantics tag is stable...
    assert classify_kernel(build_kernel(case)).tag == meta["tag"]
    # ...and the tri-engine oracle still agrees.
    report = run_case(case)
    assert report.ok, report.failures


def test_save_load_roundtrip(tmp_path):
    case = generate_case(99)
    path = save_case(case, str(tmp_path), tag="lane-disjoint", note="n", with_ir=True)
    loaded, meta = load_case(path)
    assert loaded == case
    assert meta["tag"] == "lane-disjoint"
    assert (tmp_path / (case_path_name(case) + ".ir.txt")).exists()


def test_load_rejects_unknown_format(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text('{"corpus_format": 999, "case": {}}')
    with pytest.raises(ValueError, match="unsupported corpus format"):
        load_case(str(p))
