"""Event-driven cycle model: directional behaviour and scheduling invariants."""

import numpy as np
import pytest

from repro.trace.profile import GlobalMemStats, KernelProfile, LocalityStats, WorkloadProfile
from repro.uarch import BASELINE, cycle_speedup_matrix, cycle_time_workload, simulate_kernel


def _profile(warp_instrs_total=100_000, mem_warp=0, blocks=64, reuse_frac=0.0):
    warps = {"fp": warp_instrs_total - mem_warp}
    if mem_warp:
        warps["ld.global"] = mem_warp
    hist = np.zeros(64, dtype=np.int64)
    accesses = max(mem_warp, 1)
    reuses = int(accesses * reuse_frac)
    hist[3] = reuses
    return KernelProfile(
        kernel_name="synXX",
        grid=(blocks, 1),
        block=(256, 1),
        total_blocks=blocks,
        profiled_blocks=blocks,
        threads_total=blocks * 256,
        thread_instrs={"fp": warp_instrs_total * 32},
        warp_instrs=warps,
        gmem=GlobalMemStats(
            accesses=max(mem_warp, 1),
            transactions_32b=4 * max(mem_warp, 1),
            transactions_128b=max(mem_warp, 1),
        ),
        locality=LocalityStats(
            reuse_histogram=hist,
            cold_misses=accesses - reuses,
            line_accesses=accesses,
            unique_lines=accesses - reuses,
        ),
    )


def test_compute_only_kernel_issue_bound():
    p = _profile(mem_warp=0)
    est = simulate_kernel(p, BASELINE)
    # 100k warp instructions over 16 SMs at issue width 1: ~6250 cycles/SM
    # per wave; waves = ceil(warps_per_sm / resident).
    assert est.issued_instructions > 0
    assert est.stall_fraction < 0.05
    faster = simulate_kernel(p, BASELINE.derive("w2", issue_width=2))
    assert faster.cycles < est.cycles


def test_memory_latency_exposed_with_one_warp():
    p = _profile(warp_instrs_total=1_000, mem_warp=500, blocks=1)
    skinny = BASELINE.derive("skinny", max_warps_per_sm=1, num_sms=1)
    est = simulate_kernel(p, skinny)
    # One warp cannot hide its own misses: stalls dominate.
    assert est.stall_fraction > 0.5


def test_more_warps_hide_latency():
    p = _profile(warp_instrs_total=40_000, mem_warp=4_000, blocks=32)
    few = simulate_kernel(p, BASELINE.derive("few", max_warps_per_sm=2))
    many = simulate_kernel(p, BASELINE.derive("many", max_warps_per_sm=32))
    assert many.cycles < few.cycles
    assert many.stall_fraction < few.stall_fraction


def test_bandwidth_saturation_limits_speed():
    p = _profile(warp_instrs_total=50_000, mem_warp=25_000, blocks=64)
    slow_bw = simulate_kernel(p, BASELINE.derive("bw8", dram_bandwidth=8.0))
    fast_bw = simulate_kernel(p, BASELINE.derive("bw256", dram_bandwidth=256.0))
    assert fast_bw.cycles < slow_bw.cycles


def test_cache_reuse_reduces_misses():
    streaming = simulate_kernel(
        _profile(warp_instrs_total=20_000, mem_warp=5_000, reuse_frac=0.0), BASELINE
    )
    reusing = simulate_kernel(
        _profile(warp_instrs_total=20_000, mem_warp=5_000, reuse_frac=0.9), BASELINE
    )
    assert reusing.misses < streaming.misses
    assert reusing.cycles < streaming.cycles


def test_deterministic():
    p = _profile(warp_instrs_total=30_000, mem_warp=3_000)
    a = simulate_kernel(p, BASELINE)
    b = simulate_kernel(p, BASELINE)
    assert a.cycles == b.cycles
    assert a.misses == b.misses


def test_workload_sums_kernels():
    p1 = _profile(10_000)
    p2 = _profile(20_000)
    wp = WorkloadProfile("w", "s", [p1, p2])
    total = cycle_time_workload(wp, BASELINE)
    parts = simulate_kernel(p1, BASELINE).cycles + simulate_kernel(p2, BASELINE).cycles
    assert total == pytest.approx(parts)


def test_speedup_matrix_shape_and_baseline():
    wps = [WorkloadProfile("a", "s", [_profile(10_000)]), WorkloadProfile("b", "s", [_profile(5_000, 2_000)])]
    configs = [BASELINE, BASELINE.derive("sm32", num_sms=32)]
    m = cycle_speedup_matrix(wps, configs, BASELINE)
    assert m.shape == (2, 2)
    assert np.allclose(m[:, 0], 1.0)


def test_agreement_with_roofline_on_real_suite(suite_profiles):
    """The two independent models must broadly agree on design rankings."""
    from repro.core.evaluation import geomean, kendall_tau
    from repro.uarch import default_design_space, speedup_matrix

    configs = default_design_space()
    cm = cycle_speedup_matrix(suite_profiles, configs, BASELINE)
    rm = speedup_matrix(suite_profiles, configs, BASELINE)
    cfull = [geomean(cm[:, j]) for j in range(cm.shape[1])]
    rfull = [geomean(rm[:, j]) for j in range(rm.shape[1])]
    assert kendall_tau(cfull, rfull) > 0.8
