"""Degenerate inputs and configs for both uarch models.

The cycle/roofline models sit at the end of every evaluation pipeline, so
they must stay finite and sane on the inputs real sweeps produce at the
margins: empty kernels, single-block grids, one-SM devices, starved
bandwidth, and disabled caches.
"""

import math

import numpy as np
import pytest

from repro.trace.profile import GlobalMemStats, KernelProfile, LocalityStats, WorkloadProfile
from repro.uarch import BASELINE, GpuConfig, simulate_kernel, time_kernel, time_workload
from repro.uarch.cycle import cycle_time_workload
from repro.uarch.model import occupancy_warps


def _profile(**overrides) -> KernelProfile:
    base = dict(
        kernel_name="edge",
        grid=(4, 1),
        block=(64, 1),
        total_blocks=4,
        profiled_blocks=4,
        threads_total=256,
        thread_instrs={"fp": 8_000},
        warp_instrs={"fp": 256},
    )
    base.update(overrides)
    return KernelProfile(**base)


def _mem_profile(**overrides) -> KernelProfile:
    hist = np.zeros(64, dtype=np.int64)
    return _profile(
        thread_instrs={"ld.global": 8_000},
        warp_instrs={"ld.global": 256},
        gmem=GlobalMemStats(accesses=256, transactions_32b=1_024, transactions_128b=2_048),
        locality=LocalityStats(
            reuse_histogram=hist, cold_misses=2_048, line_accesses=2_048, unique_lines=2_048
        ),
        **overrides,
    )


# --------------------------------------------------------------------------
# Zero-instruction kernels


def test_zero_instruction_kernel_costs_launch_overhead_only():
    empty = _profile(thread_instrs={}, warp_instrs={})
    timing = time_kernel(empty, BASELINE)
    assert timing.total_cycles == pytest.approx(BASELINE.launch_overhead)
    assert timing.dram_transactions == 0
    assert math.isfinite(timing.total_cycles)


def test_zero_instruction_kernel_event_model_finite():
    empty = _profile(thread_instrs={}, warp_instrs={})
    est = simulate_kernel(empty, BASELINE)
    assert math.isfinite(est.cycles)
    assert est.cycles >= BASELINE.launch_overhead
    assert est.misses == 0
    assert 0.0 <= est.stall_fraction <= 1.0


def test_zero_profiled_blocks_scale_to_zero_work():
    unsampled = _profile(profiled_blocks=0, thread_instrs={}, warp_instrs={})
    assert unsampled.sampling_scale == 0.0
    timing = time_kernel(unsampled, BASELINE)
    assert timing.total_cycles == pytest.approx(BASELINE.launch_overhead)


def test_empty_workload_times_to_zero():
    empty = WorkloadProfile(workload="none", suite="t", kernels=[])
    assert time_workload(empty, BASELINE) == 0.0
    assert cycle_time_workload(empty, BASELINE) == 0.0


# --------------------------------------------------------------------------
# Single-block grids


def test_single_block_grid_uses_one_sm():
    solo = _profile(grid=(1, 1), total_blocks=1, profiled_blocks=1, threads_total=64)
    base = time_kernel(solo, BASELINE)
    fat = time_kernel(solo, BASELINE.derive("sm64", num_sms=64))
    # One block can never fill more than one SM: extra SMs must not help,
    # and per the monotonicity invariant must not hurt either.
    assert fat.total_cycles == pytest.approx(base.total_cycles)


def test_single_block_event_model_matches_sm_count():
    solo = _mem_profile(grid=(1, 1), total_blocks=1, profiled_blocks=1, threads_total=64)
    one = simulate_kernel(solo, BASELINE.derive("sm1", num_sms=1))
    many = simulate_kernel(solo, BASELINE.derive("sm32", num_sms=32))
    assert math.isfinite(one.cycles) and math.isfinite(many.cycles)
    assert many.cycles == pytest.approx(one.cycles)


# --------------------------------------------------------------------------
# Degenerate configs: 1 SM, starved bandwidth, disabled caches


def test_one_sm_config_is_finite_and_slower():
    p = _mem_profile()
    tiny = time_kernel(p, BASELINE.derive("sm1", num_sms=1))
    assert math.isfinite(tiny.total_cycles)
    assert tiny.total_cycles >= time_kernel(p, BASELINE).total_cycles


def test_minimal_bandwidth_is_finite_and_bandwidth_bound():
    p = _mem_profile()
    starved_cfg = BASELINE.derive("bw-min", dram_bandwidth=0.001)
    starved = time_kernel(p, starved_cfg)
    assert math.isfinite(starved.total_cycles)
    assert starved.bottleneck == "bandwidth"
    assert starved.total_cycles > time_kernel(p, BASELINE).total_cycles
    est = simulate_kernel(p, starved_cfg)
    assert math.isfinite(est.cycles)
    assert est.cycles >= starved.bandwidth_cycles * 0  # finite, scheduled


def test_disabled_caches_mean_every_access_misses():
    p = _mem_profile()
    no_cache = time_kernel(p, BASELINE.derive("no-cache", l2_lines=0, tex_cache_lines=0))
    assert no_cache.cache_hit_rate == 0.0
    assert no_cache.dram_transactions == pytest.approx(p.gmem.transactions_128b)


def test_zero_bandwidth_event_model_does_not_divide_by_zero():
    p = _mem_profile()
    est = simulate_kernel(p, BASELINE.derive("bw0", dram_bandwidth=0.0))
    assert math.isfinite(est.cycles)


# --------------------------------------------------------------------------
# Occupancy extremes


def test_occupancy_floor_is_one_warp():
    hog = _profile(register_pressure=100_000, shared_bytes=10**9)
    assert occupancy_warps(hog, BASELINE) == 1
    timing = time_kernel(hog, BASELINE)
    assert math.isfinite(timing.total_cycles)


def test_occupancy_with_degenerate_block_shape():
    thin = _profile(block=(0, 0), shared_bytes=1)
    assert occupancy_warps(thin, BASELINE) >= 1


def test_design_space_finite_on_edge_profiles():
    from repro.uarch import default_design_space, speedup_matrix

    profiles = [
        WorkloadProfile(workload="empty", suite="t", kernels=[_profile(thread_instrs={}, warp_instrs={})]),
        WorkloadProfile(workload="solo", suite="t", kernels=[
            _mem_profile(grid=(1, 1), total_blocks=1, profiled_blocks=1, threads_total=64)
        ]),
    ]
    perf = speedup_matrix(profiles, default_design_space(), BASELINE)
    assert np.isfinite(perf).all()
    assert (perf > 0).all()
