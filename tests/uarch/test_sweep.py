"""Sweep engine: parity, shard caching, invalidation, derived views."""

import numpy as np
import pytest

from repro.trace.profile import GlobalMemStats, KernelProfile, LocalityStats, WorkloadProfile
from repro.uarch import (
    BASELINE,
    config_key,
    default_design_space,
    design_cost,
    pareto_frontier,
    profile_digest,
    run_sweep,
)
from repro.uarch.sweep import SweepCache


def _workload(name: str, fp: int, loads: int) -> WorkloadProfile:
    hist = np.zeros(64, dtype=np.int64)
    hist[3] = loads * 4
    kernel = KernelProfile(
        kernel_name=f"{name}-k",
        grid=(64, 1),
        block=(256, 1),
        total_blocks=64,
        profiled_blocks=64,
        threads_total=64 * 256,
        thread_instrs={"fp": fp * 32, "ld.global": loads * 32},
        warp_instrs={"fp": fp, "ld.global": loads},
        gmem=GlobalMemStats(accesses=loads, transactions_32b=loads * 4, transactions_128b=loads * 8),
        locality=LocalityStats(
            reuse_histogram=hist,
            cold_misses=loads * 12,
            line_accesses=loads * 16,
            unique_lines=loads * 12,
        ),
    )
    return WorkloadProfile(name, "synth", [kernel])


@pytest.fixture
def workloads():
    return [
        _workload("compute", fp=80_000, loads=100),
        _workload("memory", fp=2_000, loads=6_000),
        _workload("mixed", fp=40_000, loads=3_000),
    ]


def test_parallel_matches_serial_bit_for_bit(workloads, tmp_path):
    serial = run_sweep(
        workloads, models=None, jobs=1, cache_dir=str(tmp_path / "serial")
    )
    parallel = run_sweep(
        workloads, models=None, jobs=2, cache_dir=str(tmp_path / "parallel")
    )
    assert serial.models == parallel.models
    for model in serial.models:
        assert np.array_equal(serial.cycles[model], parallel.cycles[model])
        assert np.array_equal(
            serial.baseline_cycles[model], parallel.baseline_cycles[model]
        )


def test_warm_cache_serves_every_cell_identically(workloads, tmp_path):
    cold = run_sweep(workloads, models=None, cache_dir=str(tmp_path))
    assert cold.cache_hits == 0 and cold.cache_misses > 0
    warm = run_sweep(workloads, models=None, cache_dir=str(tmp_path))
    assert warm.cache_misses == 0
    assert warm.cache_hits == cold.cache_misses  # 100% of timing shards hit
    for model in cold.models:
        assert np.array_equal(cold.cycles[model], warm.cycles[model])


def test_model_edit_invalidates_only_that_models_shards(workloads, tmp_path, monkeypatch):
    run_sweep(workloads, models=None, cache_dir=str(tmp_path))

    original = SweepCache.model_digest

    def edited(self, name: str) -> str:
        if name == "cycle":
            return "cycle-edited"
        return original(self, name)

    monkeypatch.setattr(SweepCache, "model_digest", edited)
    rerun = run_sweep(workloads, models=None, cache_dir=str(tmp_path))
    n_designs = len(default_design_space())
    # Roofline shards still hit; every cycle cell is recomputed.
    assert rerun.cache_hits == len(workloads) * n_designs
    assert rerun.cache_misses == len(workloads) * n_designs


def test_new_design_point_tops_up_shard(workloads, tmp_path):
    base_space = default_design_space()
    run_sweep(workloads, configs=base_space, models=("roofline",), cache_dir=str(tmp_path))
    extended = base_space + [BASELINE.derive("sm64", num_sms=64)]
    topped = run_sweep(
        workloads, configs=extended, models=("roofline",), cache_dir=str(tmp_path)
    )
    # Only the one new design per workload misses.
    assert topped.cache_misses == len(workloads)
    assert topped.cache_hits == len(workloads) * len(base_space)


def test_baseline_appended_when_absent(workloads, tmp_path):
    configs = [BASELINE.derive("sm32", num_sms=32)]
    sweep = run_sweep(
        workloads, configs=configs, models=("roofline",), cache_dir=str(tmp_path)
    )
    assert sweep.design_names == ["sm32"]
    speedups = sweep.speedups("roofline")
    assert speedups.shape == (len(workloads), 1)
    assert np.all(sweep.baseline_cycles["roofline"] > 0)


def test_speedups_baseline_column_is_one(workloads, tmp_path):
    sweep = run_sweep(workloads, models=None, cache_dir=str(tmp_path))
    for model in sweep.models:
        col = sweep.design_names.index("base")
        assert np.allclose(sweep.speedups(model)[:, col], 1.0)


def test_use_cache_false_writes_nothing(workloads, tmp_path):
    sweep = run_sweep(workloads, models=("roofline",), use_cache=False, cache_dir=str(tmp_path))
    assert sweep.cache_hits == 0
    assert list(tmp_path.iterdir()) == []


def test_config_key_is_value_addressed():
    a = BASELINE.derive("one-name", num_sms=32)
    b = BASELINE.derive("other-name", num_sms=32)
    assert config_key(a) == config_key(b)
    assert config_key(a) != config_key(BASELINE)


def test_profile_digest_tracks_content(workloads):
    assert profile_digest(workloads[0]) != profile_digest(workloads[1])
    clone = _workload("compute", fp=80_000, loads=100)
    assert profile_digest(workloads[0]) == profile_digest(clone)


def test_design_cost_baseline_is_one():
    assert design_cost(BASELINE) == pytest.approx(1.0)
    assert design_cost(BASELINE.derive("fat", num_sms=32)) > 1.0
    assert design_cost(BASELINE.derive("lat", mem_latency=200)) > 1.0
    assert design_cost(BASELINE.derive("thin", num_sms=8)) < 1.0


def test_pareto_frontier_drops_dominated_points():
    costs = [1.0, 2.0, 2.0, 3.0]
    speedups = [1.0, 2.0, 1.5, 2.0]
    frontier = pareto_frontier(costs, speedups)
    assert frontier == [0, 1]


def test_telemetry_counts_cache_traffic(workloads, tmp_path):
    from repro.telemetry import get_telemetry

    tele = get_telemetry()
    tele.enable(reset=True)
    try:
        run_sweep(workloads, models=("roofline",), cache_dir=str(tmp_path))
        run_sweep(workloads, models=("roofline",), cache_dir=str(tmp_path))
    finally:
        tele.disable()
    n_cells = len(workloads) * len(default_design_space())
    assert tele.counters["dse.cache.misses"] == n_cells
    assert tele.counters["dse.cache.hits"] == n_cells
    assert len(tele.spans_by_name("dse.sweep")) == 2
