"""Declarative design spaces: spec round-trips, builders, validation errors."""

import pytest

from repro.uarch import BASELINE, DesignSpace, DesignSpaceError, default_design_space, default_space
from repro.uarch.space import DEFAULT_SPEC, SPEC_SCHEMA, Axis, AxisPoint, load_space


def _tiny_spec(**overrides):
    spec = {
        "schema": SPEC_SCHEMA,
        "name": "tiny",
        "sweep": "one_hot",
        "baseline": {"name": "base"},
        "axes": [
            {
                "field": "num_sms",
                "points": [{"name": "sm32", "value": 32}],
            },
            {
                "field": "dram_bandwidth",
                "points": [{"name": "bw-2x", "value": 128.0}],
            },
        ],
        "points": [{"name": "both", "num_sms": 32, "dram_bandwidth": 128.0}],
    }
    spec.update(overrides)
    return spec


def test_default_space_matches_historical_points():
    configs = default_design_space()
    names = [c.name for c in configs]
    assert names == [
        "base", "sm08", "sm32", "dual-issue", "bw-half", "bw-2x",
        "lat-800", "lat-200", "no-l2", "l2-8k", "warps-64", "warps-16",
        "regfile-8k", "shmem-16k", "sm32-bw", "fat",
    ]
    assert BASELINE in configs
    by_name = {c.name: c for c in configs}
    assert by_name["sm32-bw"].num_sms == 32
    assert by_name["sm32-bw"].dram_bandwidth == 128.0
    assert by_name["fat"].issue_width == 2 and by_name["fat"].l2_lines == 8192


def test_spec_round_trip_preserves_configs():
    space = default_space()
    again = DesignSpace.from_spec(space.to_spec())
    assert again.configs() == space.configs()
    assert again.name == space.name and again.sweep == space.sweep


def test_save_load_file_round_trip(tmp_path):
    path = tmp_path / "space.json"
    space = DesignSpace.from_spec(_tiny_spec())
    space.save(path)
    loaded = DesignSpace.load(path)
    assert loaded.configs() == space.configs()
    assert load_space(None).configs() == default_space().configs()


def test_one_hot_builder_layout():
    configs = DesignSpace.from_spec(_tiny_spec()).configs()
    assert [c.name for c in configs] == ["base", "sm32", "bw-2x", "both"]
    assert configs[1].num_sms == 32 and configs[1].dram_bandwidth == 64.0
    assert configs[3].num_sms == 32 and configs[3].dram_bandwidth == 128.0


def test_grid_builder_covers_product():
    configs = DesignSpace.from_spec(_tiny_spec(sweep="grid")).configs()
    names = [c.name for c in configs]
    # 2 axes x (baseline + 1 point) each = 4 combos; paired points excluded.
    assert sorted(names) == sorted(["base", "sm32", "bw-2x", "sm32+bw-2x"])
    combo = {c.name: c for c in configs}["sm32+bw-2x"]
    assert combo.num_sms == 32 and combo.dram_bandwidth == 128.0


def test_grid_limit_enforced():
    axes = [
        {
            "field": "num_sms",
            "points": [{"name": f"sm{v}", "value": v} for v in range(1, 100)],
        },
        {
            "field": "l2_lines",
            "points": [{"name": f"l2-{v}", "value": v} for v in range(1, 100)],
        },
    ]
    space = DesignSpace.from_spec(_tiny_spec(sweep="grid", axes=axes, points=[]))
    with pytest.raises(DesignSpaceError, match="limit"):
        space.configs()


def test_default_spec_is_valid_schema():
    assert DEFAULT_SPEC["schema"] == SPEC_SCHEMA
    space = DesignSpace.from_spec(DEFAULT_SPEC)
    assert isinstance(space.axes[0], Axis)
    assert isinstance(space.axes[0].points[0], AxisPoint)


@pytest.mark.parametrize(
    "mutation, message",
    [
        ({"schema": "repro.design-space/v0"}, "schema"),
        ({"name": ""}, "name"),
        ({"sweep": "random"}, "sweep mode"),
        (
            {"axes": [{"field": "num_cores", "points": [{"name": "x", "value": 2}]}]},
            "unknown GpuConfig field",
        ),
        (
            {"axes": [{"field": "num_sms", "points": [{"name": "x", "value": "many"}]}]},
            "expects int",
        ),
        (
            {"axes": [{"field": "num_sms", "points": [{"name": "x", "value": 2.5}]}]},
            "expects int",
        ),
        (
            {
                "axes": [
                    {
                        "field": "num_sms",
                        "points": [
                            {"name": "dup", "value": 2},
                            {"name": "dup", "value": 4},
                        ],
                    }
                ]
            },
            "duplicate design name",
        ),
        ({"points": [{"num_sms": 32}]}, "name"),
        ({"points": [{"name": "bad", "frequency": 2.0}]}, "unknown GpuConfig field"),
    ],
)
def test_spec_validation_errors(mutation, message):
    with pytest.raises(DesignSpaceError, match=message):
        DesignSpace.from_spec(_tiny_spec(**mutation))


def test_not_json_raises_typed_error(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(DesignSpaceError, match="not valid JSON"):
        DesignSpace.load(path)


def test_int_fields_accept_ints_floats_rejected_bools():
    with pytest.raises(DesignSpaceError, match="expects int"):
        DesignSpace.from_spec(
            _tiny_spec(
                axes=[{"field": "num_sms", "points": [{"name": "b", "value": True}]}]
            )
        )
    # Float fields accept plain ints (JSON has no float literal distinction).
    space = DesignSpace.from_spec(
        _tiny_spec(
            axes=[{"field": "dram_bandwidth", "points": [{"name": "bw", "value": 128}]}],
            points=[],
        )
    )
    assert space.configs()[1].dram_bandwidth == 128
