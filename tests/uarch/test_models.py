"""Timing-model registry: naming, adapters, source declarations."""

import numpy as np
import pytest

from repro.trace.profile import GlobalMemStats, KernelProfile, LocalityStats, WorkloadProfile
from repro.uarch import (
    BASELINE,
    TimingModel,
    get_model,
    model_names,
    model_source_files,
    resolve_models,
    simulate_kernel,
    time_kernel,
    time_workload,
)
from repro.uarch.models import register_model


def _kernel() -> KernelProfile:
    hist = np.zeros(64, dtype=np.int64)
    hist[3] = 40_000
    return KernelProfile(
        kernel_name="k",
        grid=(64, 1),
        block=(256, 1),
        total_blocks=64,
        profiled_blocks=64,
        threads_total=64 * 256,
        thread_instrs={"fp": 2_000_000, "ld.global": 200_000},
        warp_instrs={"fp": 80_000, "ld.global": 6_250},
        gmem=GlobalMemStats(accesses=6_250, transactions_32b=25_000, transactions_128b=50_000),
        locality=LocalityStats(
            reuse_histogram=hist,
            cold_misses=60_000,
            line_accesses=100_000,
            unique_lines=60_000,
        ),
    )


def test_registry_order_and_lookup():
    assert model_names() == ["roofline", "cycle"]
    assert get_model("roofline").name == "roofline"
    with pytest.raises(ValueError, match="unknown timing model"):
        get_model("oracle")


def test_resolve_models_canonicalizes():
    assert resolve_models(None) == ("roofline", "cycle")
    assert resolve_models(["cycle"]) == ("cycle",)
    # Order and duplicates normalise to registration order.
    assert resolve_models(["cycle", "roofline", "cycle"]) == ("roofline", "cycle")
    with pytest.raises(ValueError, match="unknown timing model"):
        resolve_models(["roofline", "oracle"])


def test_roofline_adapter_matches_time_kernel():
    k = _kernel()
    est = get_model("roofline").estimate(k, BASELINE)
    t = time_kernel(k, BASELINE)
    assert est.kernel_name == "k"
    assert est.cycles == t.total_cycles
    assert est.detail["bottleneck"] == t.bottleneck


def test_cycle_adapter_matches_simulate_kernel():
    k = _kernel()
    est = get_model("cycle").estimate(k, BASELINE)
    sim = simulate_kernel(k, BASELINE)
    assert est.cycles == sim.cycles
    assert est.detail["stall_fraction"] == sim.stall_fraction


def test_time_workload_sums_estimates():
    wp = WorkloadProfile("w", "s", [_kernel(), _kernel()])
    model = get_model("roofline")
    assert model.time_workload(wp, BASELINE) == pytest.approx(
        time_workload(wp, BASELINE)
    )
    assert model.time_workload(wp, BASELINE) == pytest.approx(
        2 * model.estimate(_kernel(), BASELINE).cycles
    )


def test_source_files_declare_invalidation_units():
    roofline = model_source_files("roofline")
    cycle = model_source_files("cycle")
    assert [p.endswith("model.py") for p in roofline] == [True]
    # The cycle model imports helpers from model.py, so editing either file
    # must invalidate its shards.
    assert any(p.endswith("cycle.py") for p in cycle)
    assert any(p.endswith("model.py") for p in cycle)


def test_register_model_validates():
    class Anonymous(TimingModel):
        pass

    with pytest.raises(ValueError, match="must set a name"):
        register_model(Anonymous)

    class NoSources(TimingModel):
        name = "no-sources"

    with pytest.raises(ValueError, match="source modules"):
        register_model(NoSources)

    class Duplicate(TimingModel):
        name = "roofline"
        sources = (np,)

    with pytest.raises(ValueError, match="duplicate"):
        register_model(Duplicate)
