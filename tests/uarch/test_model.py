"""Analytical timing model: directional correctness on synthetic profiles."""

import numpy as np
import pytest

from repro.trace.profile import GlobalMemStats, KernelProfile, LocalityStats, SharedMemStats, WorkloadProfile
from repro.uarch import (
    BASELINE,
    GpuConfig,
    bottleneck_summary,
    default_design_space,
    speedup_matrix,
    time_kernel,
    time_workload,
)


def _compute_profile() -> KernelProfile:
    """A compute-bound kernel: lots of warp instructions, no memory."""
    return KernelProfile(
        kernel_name="compute",
        grid=(64, 1),
        block=(256, 1),
        total_blocks=64,
        profiled_blocks=64,
        threads_total=64 * 256,
        thread_instrs={"fp": 10_000_000},
        warp_instrs={"fp": 400_000},
    )


def _memory_profile(reuse_frac=0.0) -> KernelProfile:
    """A bandwidth-bound kernel with an optional cache-friendly reuse CDF."""
    hist = np.zeros(64, dtype=np.int64)
    accesses = 100_000
    reuses = int(accesses * reuse_frac)
    hist[3] = reuses  # distances < 8 lines: hits in any realistic cache
    return KernelProfile(
        kernel_name="mem",
        grid=(64, 1),
        block=(256, 1),
        total_blocks=64,
        profiled_blocks=64,
        threads_total=64 * 256,
        thread_instrs={"ld.global": 200_000},
        warp_instrs={"ld.global": 6_250},
        gmem=GlobalMemStats(accesses=6_250, transactions_32b=25_000, transactions_128b=50_000),
        locality=LocalityStats(
            reuse_histogram=hist,
            cold_misses=accesses - reuses,
            line_accesses=accesses,
            unique_lines=accesses - reuses,
        ),
    )


def test_more_sms_speed_up_compute_bound():
    p = _compute_profile()
    base = time_kernel(p, BASELINE)
    fat = time_kernel(p, BASELINE.derive("sm32", num_sms=32))
    assert base.bottleneck == "compute"
    assert fat.total_cycles < base.total_cycles


def test_sms_beyond_grid_width_do_not_help():
    p = _compute_profile()
    narrow = KernelProfile(**{**p.__dict__, "total_blocks": 4, "grid": (4, 1)})
    a = time_kernel(narrow, BASELINE.derive("sm16", num_sms=16))
    b = time_kernel(narrow, BASELINE.derive("sm64", num_sms=64))
    assert a.compute_cycles == b.compute_cycles


def test_bandwidth_bound_gains_from_bandwidth_not_sms():
    p = _memory_profile()
    base = time_kernel(p, BASELINE)
    assert base.bottleneck == "bandwidth"
    more_sms = time_kernel(p, BASELINE.derive("sm32", num_sms=32))
    more_bw = time_kernel(p, BASELINE.derive("bw", dram_bandwidth=128.0))
    assert more_bw.total_cycles < base.total_cycles
    assert more_sms.total_cycles == pytest.approx(base.total_cycles, rel=0.2)


def test_cache_helps_only_reusing_workloads():
    streaming = _memory_profile(reuse_frac=0.0)
    reusing = _memory_profile(reuse_frac=0.8)
    no_cache = BASELINE.derive("no-l2", l2_lines=0)
    with_cache = BASELINE.derive("l2", l2_lines=4096)
    s0 = time_kernel(streaming, no_cache).total_cycles
    s1 = time_kernel(streaming, with_cache).total_cycles
    r0 = time_kernel(reusing, no_cache).total_cycles
    r1 = time_kernel(reusing, with_cache).total_cycles
    assert s1 == pytest.approx(s0)
    assert r1 < r0 * 0.5


def test_cache_hit_rate_follows_reuse_cdf():
    p = _memory_profile(reuse_frac=0.5)
    t = time_kernel(p, BASELINE.derive("l2", l2_lines=4096))
    assert t.cache_hit_rate == pytest.approx(0.5, abs=0.01)


def test_shared_conflicts_inflate_compute():
    base = _compute_profile()
    conflicted = KernelProfile(
        **{
            **base.__dict__,
            "shmem": SharedMemStats(accesses=200_000, conflict_degree_sum=800_000.0),
        }
    )
    a = time_kernel(base, BASELINE)
    b = time_kernel(conflicted, BASELINE)
    assert b.compute_cycles > a.compute_cycles


def test_sfu_instructions_cost_more():
    p = _compute_profile()
    sfu = KernelProfile(
        **{**p.__dict__, "warp_instrs": {"fp": 200_000, "sfu": 200_000}}
    )
    assert time_kernel(sfu, BASELINE).compute_cycles > time_kernel(p, BASELINE).compute_cycles


def test_latency_bound_when_concurrency_low():
    p = _memory_profile()
    skinny = BASELINE.derive("skinny", max_warps_per_sm=1, num_sms=1, dram_bandwidth=1e9)
    t = time_kernel(p, skinny)
    assert t.bottleneck == "latency"
    fat = BASELINE.derive("fat", max_warps_per_sm=64, num_sms=64, dram_bandwidth=1e9)
    assert time_kernel(p, fat).latency_cycles < t.latency_cycles


def test_sampling_scale_extrapolates():
    p = _compute_profile()
    sampled = KernelProfile(**{**p.__dict__, "profiled_blocks": 16})
    full = time_kernel(p, BASELINE).total_cycles
    est = time_kernel(sampled, BASELINE).total_cycles
    # 1/4 of blocks profiled -> warp instructions scale by 4 -> same estimate.
    assert est == pytest.approx((full - BASELINE.launch_overhead) * 4 + BASELINE.launch_overhead)


def test_time_workload_sums_kernels():
    wp = WorkloadProfile("w", "s", [_compute_profile(), _memory_profile()])
    total = time_workload(wp, BASELINE)
    parts = sum(time_kernel(k, BASELINE).total_cycles for k in wp.kernels)
    assert total == pytest.approx(parts)


def test_speedup_matrix_baseline_column_is_one():
    wps = [
        WorkloadProfile("a", "s", [_compute_profile()]),
        WorkloadProfile("b", "s", [_memory_profile()]),
    ]
    configs = [BASELINE, BASELINE.derive("sm32", num_sms=32)]
    m = speedup_matrix(wps, configs, BASELINE)
    assert m.shape == (2, 2)
    assert np.allclose(m[:, 0], 1.0)
    assert m[0, 1] > 1.0  # compute-bound gains from SMs


def test_default_design_space_well_formed():
    space = default_design_space()
    names = [c.name for c in space]
    assert len(names) == len(set(names))
    assert BASELINE in space
    assert all(c.num_sms > 0 and c.dram_bandwidth > 0 for c in space)


def test_bottleneck_summary_partitions(suite_profiles):
    groups = bottleneck_summary(suite_profiles, BASELINE)
    listed = [w for group in groups.values() for w in group]
    assert sorted(listed) == sorted(p.workload for p in suite_profiles)
    # The suite must exercise at least two different bottlenecks.
    assert sum(1 for g in groups.values() if g) >= 2


def test_occupancy_limited_by_registers():
    from repro.uarch.model import occupancy_warps

    light = _compute_profile()
    heavy = KernelProfile(**{**light.__dict__, "register_pressure": 64})
    cfg = BASELINE.derive("small-rf", regfile_per_sm=8192)
    # 64 regs * 32 lanes = 2048 regs/warp -> 4 warps from an 8K file.
    assert occupancy_warps(heavy, cfg) == 4
    assert occupancy_warps(light, cfg) > occupancy_warps(heavy, cfg)


def test_occupancy_limited_by_shared_memory():
    from repro.uarch.model import occupancy_warps

    p = _compute_profile()
    fat_shared = KernelProfile(**{**p.__dict__, "shared_bytes": 24576})
    cfg = BASELINE.derive("sh", shared_per_sm=49152)
    # Two blocks of 256 threads fit -> 16 warps.
    assert occupancy_warps(fat_shared, cfg) == 16


def test_occupancy_never_below_one():
    from repro.uarch.model import occupancy_warps

    p = KernelProfile(
        **{**_compute_profile().__dict__, "register_pressure": 10_000, "shared_bytes": 10**6}
    )
    assert occupancy_warps(p, BASELINE) == 1


def test_register_pressure_hurts_latency_bound_kernels():
    p = _memory_profile()
    heavy = KernelProfile(**{**p.__dict__, "register_pressure": 128})
    cfg = BASELINE.derive("rf", regfile_per_sm=8192, dram_bandwidth=1e9)
    light_t = time_kernel(p, cfg)
    heavy_t = time_kernel(heavy, cfg)
    assert heavy_t.latency_cycles > light_t.latency_cycles
