"""Registry mechanics: registration, selection, context determinism."""

import numpy as np
import pytest

from repro.verify import all_properties, get_property, select_properties
from repro.verify.registry import Property, VerifyContext, register


def test_registry_spans_every_layer():
    props = all_properties()
    assert len(props) >= 12
    assert len({p.name for p in props}) == len(props)
    layers = {p.layer for p in props}
    assert layers == {"simt", "trace", "analysis", "uarch"}
    for p in props:
        assert p.invariant  # every property states its invariant


def test_generator_backed_properties_exist():
    backed = [p for p in all_properties() if p.generator_backed]
    assert len(backed) >= 5
    assert {p.layer for p in backed} >= {"simt", "trace", "uarch"}


def test_get_property_roundtrip():
    for p in all_properties():
        assert get_property(p.name) is p
    with pytest.raises(KeyError):
        get_property("no.such.property")


def test_select_by_exact_name_prefix_and_layer():
    assert [p.name for p in select_properties(["sim.batch.parity"])] == [
        "sim.batch.parity"
    ]
    prefixed = select_properties(["sim.block_order"])
    assert {p.name for p in prefixed} == {
        "sim.block_order.memory",
        "sim.block_order.sections",
    }
    by_layer = select_properties(["analysis"])
    assert by_layer and all(p.layer == "analysis" for p in by_layer)
    # Overlapping tokens do not duplicate entries.
    combined = select_properties(["analysis", "analysis.pca.orthonormal"])
    names = [p.name for p in combined]
    assert len(names) == len(set(names))


def test_select_unknown_token_raises_with_vocabulary():
    with pytest.raises(KeyError, match="unknown property"):
        select_properties(["bogus"])


def test_register_rejects_duplicates_and_blank_metadata():
    class Dup(Property):
        name = all_properties()[0].name
        layer = "simt"
        invariant = "duplicate"

    with pytest.raises(ValueError, match="duplicate"):
        register(Dup)

    class Blank(Property):
        name = "x.blank"
        layer = "simt"
        invariant = ""

    with pytest.raises(ValueError, match="must set"):
        register(Blank)


def test_context_budget_and_seed_streams():
    ctx = VerifyContext(seed=0, quick=True)
    assert ctx.cases(5, 24) == 5
    assert VerifyContext(seed=0, quick=False).cases(5, 24) == 24
    assert VerifyContext(seed=0, budget=3).cases(5, 24) == 3

    # Case-seed streams are deterministic, per-property decorrelated, and
    # shifted by the run seed.
    a = [ctx.case_seed("p.one", i) for i in range(4)]
    assert a == [ctx.case_seed("p.one", i) for i in range(4)]
    assert a != [ctx.case_seed("p.two", i) for i in range(4)]
    assert a != [VerifyContext(seed=1).case_seed("p.one", i) for i in range(4)]

    ra = ctx.rng("p.one").integers(0, 1 << 30, 4)
    rb = ctx.rng("p.two").integers(0, 1 << 30, 4)
    assert not np.array_equal(ra, rb)
    assert np.array_equal(ra, VerifyContext(seed=0).rng("p.one").integers(0, 1 << 30, 4))
