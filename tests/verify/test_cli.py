"""The ``repro verify`` command-line surface."""

import json

import pytest

from repro.cli import main


def test_verify_list(capsys):
    assert main(["verify", "--list"]) == 0
    out = capsys.readouterr().out
    assert "sim.block_order.memory" in out
    assert "uarch.ranking" in out
    assert "generator-backed" in out


def test_verify_unknown_property_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["verify", "--only", "bogus"])
    assert exc.value.code == 2
    assert "unknown property" in capsys.readouterr().err


def test_verify_only_layer_passes(capsys):
    assert main(["verify", "--quick", "--budget", "1", "--only", "analysis"]) == 0
    out = capsys.readouterr().out
    assert "analysis.pca.orthonormal" in out
    assert "all properties hold" in out
    assert "sim.batch.parity" not in out


def test_verify_json_stdout(capsys):
    assert (
        main(["verify", "--quick", "--budget", "1", "--only", "analysis.kmeans", "--json"])
        == 0
    )
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.verify/v1"
    assert [p["name"] for p in doc["properties"]] == ["analysis.kmeans.determinism"]


def test_verify_json_out_artifact(tmp_path, capsys):
    path = tmp_path / "report.json"
    assert (
        main(
            [
                "verify",
                "--quick",
                "--budget",
                "1",
                "--only",
                "trace.profile.accounting",
                "--json-out",
                str(path),
            ]
        )
        == 0
    )
    doc = json.loads(path.read_text())
    assert doc["ok"] is True
    capsys.readouterr()


def test_verify_self_test_subcommand(capsys):
    assert main(["verify", "--self-test", "--only", "analysis.pca.orthonormal"]) == 0
    out = capsys.readouterr().out
    assert "DETECTED" in out
    assert "every property detects its planted violation" in out


def test_verify_verbose_progress(capsys):
    assert (
        main(["verify", "--quick", "--budget", "1", "--only", "analysis.pca", "-v"]) == 0
    )
    err = capsys.readouterr().err
    assert "PASS" in err
