"""Planted-violation self-test: no property is allowed to be vacuous.

Each property plants a seeded violation of its own invariant and must
detect it; generator-backed properties must additionally shrink the
planted counterexample.  A property whose plant goes undetected would
pass ``verify`` forever without checking anything — this is the tier-1
guard against that.
"""

import pytest

from repro.verify import all_properties, run_selftest


@pytest.fixture(scope="module")
def selftest_report():
    return run_selftest(seed=0, quick=True)


def test_every_property_detects_its_planted_violation(selftest_report):
    missed = [p for p in selftest_report.planted if not p.detected]
    assert not missed, "vacuous properties: " + "; ".join(
        f"{p.name} ({p.detail})" for p in missed
    )
    assert selftest_report.ok
    assert [p.name for p in selftest_report.planted] == [
        p.name for p in all_properties()
    ]


def test_generator_backed_plants_shrink(selftest_report):
    backed = {p.name for p in all_properties() if p.generator_backed}
    for planted in selftest_report.planted:
        if planted.name in backed:
            assert planted.shrunk_from is not None, planted.name
            assert planted.shrunk_to is not None, planted.name
            assert planted.shrunk_to <= planted.shrunk_from, planted.name
        else:
            assert planted.shrunk_from is None, planted.name


def test_every_plant_reports_detail(selftest_report):
    for planted in selftest_report.planted:
        assert planted.detail, planted.name


def test_selftest_json_report(selftest_report):
    doc = selftest_report.to_json()
    assert doc["mode"] == "selftest"
    assert doc["ok"] is True
    assert doc["properties"] == []
    assert all(entry["detected"] for entry in doc["planted"])
