"""Nightly deep property sweep (full default budgets).

Excluded from tier-1 by the ``slow`` marker; the nightly workflow runs
``pytest -m slow`` plus ``repro verify`` in deep mode.
"""

import pytest

from repro.verify import run_selftest, run_verify

pytestmark = pytest.mark.slow


def test_deep_generator_properties_hold():
    report = run_verify(
        seed=0,
        quick=False,
        only=["simt", "trace", "uarch.monotonic"],
    )
    failed = [r for r in report.results if not r.ok]
    assert not failed, "; ".join(f"{r.name}: {r.failures[:2]}" for r in failed)


def test_deep_analysis_properties_hold():
    report = run_verify(seed=0, quick=False, only=["analysis"])
    assert report.ok, [r.failures for r in report.results if not r.ok]


def test_deep_ranking_fidelity(suite_profiles):
    # The conftest fixture warms the on-disk profile cache for the full
    # suite, so the deep ranking check reuses it instead of re-simulating.
    report = run_verify(seed=0, quick=False, only=["uarch.ranking"])
    assert report.ok, report.results[0].failures


def test_deep_selftest_alternate_seed():
    report = run_selftest(seed=1, quick=False)
    assert report.ok, [p.detail for p in report.planted if not p.detected]
