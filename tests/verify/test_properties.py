"""Every registered property holds on seeded inputs (tier-1 budget).

The deep sweep (full default budgets, full-suite ranking) runs nightly —
see ``test_deep.py``.  Here each property gets a small but real input
budget so a regression in any layer's invariant fails tier-1.
"""

import pytest

from repro.verify import run_verify
from repro.verify.runner import REPORT_SCHEMA


@pytest.fixture(scope="module")
def quick_report():
    return run_verify(seed=0, quick=True, budget=2)


def test_all_properties_pass_quick(quick_report):
    failed = [r for r in quick_report.results if not r.ok]
    assert not failed, "properties violated: " + "; ".join(
        f"{r.name}: {r.failures[:2]}" for r in failed
    )
    assert quick_report.ok


def test_report_covers_whole_registry(quick_report):
    from repro.verify import all_properties

    assert [r.name for r in quick_report.results] == [
        p.name for p in all_properties()
    ]
    assert all(r.cases >= 1 for r in quick_report.results)


def test_json_report_shape(quick_report):
    doc = quick_report.to_json()
    assert doc["schema"] == REPORT_SCHEMA
    assert doc["mode"] == "check"
    assert doc["ok"] is True
    assert len(doc["properties"]) == len(quick_report.results)
    for entry in doc["properties"]:
        assert entry["status"] == "pass"
        assert entry["counterexample"] is None


def test_verify_runs_under_telemetry():
    from repro import api

    with api.trace_session() as tele:
        report = run_verify(seed=0, quick=True, only=["analysis.pca.orthonormal"])
    assert report.ok
    assert tele.spans_by_name("verify.check")
    prop_spans = tele.spans_by_name("verify.property")
    assert [s.attrs["property"] for s in prop_spans] == ["analysis.pca.orthonormal"]


def test_budget_override_controls_case_count():
    report = run_verify(seed=0, budget=1, only=["trace.profile.accounting"])
    assert report.results[0].cases == 1
